package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"streamkf/internal/dsms"
	"streamkf/internal/stream"
	"streamkf/internal/trace"
)

// benchReading constructs a never-suppressed reading: the "constant"
// model with a tiny δ transmits everything, so the benchmarks measure
// pure forwarding cost, not suppression.
func benchReading(seq int, base float64) stream.Reading {
	return stream.Reading{Seq: seq, Time: float64(seq), Values: []float64{base + float64(seq)}}
}

// benchShards brings up n in-memory shards for a benchmark.
func benchShards(b *testing.B, n int) []string {
	b.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		s := dsms.NewServer(testCatalog())
		s.SetShardInfo(i, 0)
		ts, err := dsms.NewTCPServer(s, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go ts.Serve()
		b.Cleanup(func() { ts.Close() })
		addrs[i] = ts.Addr()
	}
	return addrs
}

// benchRouterForwardDirect is the baseline: the same ingest workload
// against a single shard with no router in the path.
func benchRouterForwardDirect(b *testing.B) {
	catalog := testCatalog()
	s := dsms.NewServer(catalog)
	if err := s.Register(stream.Query{ID: "q-bench", SourceID: "bench", Delta: 1e-6, Model: "constant"}); err != nil {
		b.Fatal(err)
	}
	ts, err := dsms.NewTCPServer(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ts.Serve()
	b.Cleanup(func() { ts.Close() })
	agent, err := dsms.DialSource(ts.Addr(), "bench", catalog)
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent, err := agent.Offer(benchReading(i, 0))
		if err != nil {
			b.Fatal(err)
		}
		if !sent {
			b.Fatal("reading unexpectedly suppressed")
		}
	}
	if err := agent.Drain(); err != nil {
		b.Fatal(err)
	}
}

// benchRouterForwardRouted sends the identical workload through a
// 2-shard router: update decode, route lookup, forward envelope,
// upstream write, forward-ack fan-back, downstream ack relay — the
// whole hop. Shared with TestRouterForwardAllocBudget, which gates its
// allocation count against BENCH_CLUSTER.json.
func benchRouterForwardRouted(b *testing.B) {
	catalog := testCatalog()
	addrs := benchShards(b, 2)
	r, err := NewRouter("127.0.0.1:0", addrs, Options{})
	if err != nil {
		b.Fatal(err)
	}
	go r.Serve()
	b.Cleanup(func() { r.Close() })
	if err := r.RegisterQuery(stream.Query{ID: "q-bench", SourceID: "bench", Delta: 1e-6, Model: "constant"}); err != nil {
		b.Fatal(err)
	}
	agent, err := dsms.DialSource(r.Addr(), "bench", catalog)
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent, err := agent.Offer(benchReading(i, 0))
		if err != nil {
			b.Fatal(err)
		}
		if !sent {
			b.Fatal("reading unexpectedly suppressed")
		}
	}
	if err := agent.Drain(); err != nil {
		b.Fatal(err)
	}
}

// benchRouterForwardRoutedTraced is the routed workload with the full
// observability plane on: traced shards, traced router, traced agent.
// Every update carries a hop-extended trace frame the router decodes,
// re-stamps and records — and the path must still not allocate beyond
// the untraced budget (the recorder is a preallocated seqlock ring,
// the hop rewrite reuses the writer's scratch).
func benchRouterForwardRoutedTraced(b *testing.B) {
	catalog := testCatalog()
	addrs := make([]string, 2)
	for i := 0; i < 2; i++ {
		s := dsms.NewServer(testCatalog())
		s.SetShardInfo(i, 0)
		s.EnableTracing(trace.Options{})
		ts, err := dsms.NewTCPServer(s, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go ts.Serve()
		b.Cleanup(func() { ts.Close() })
		addrs[i] = ts.Addr()
	}
	r, err := NewRouter("127.0.0.1:0", addrs, Options{Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	go r.Serve()
	b.Cleanup(func() { r.Close() })
	if err := r.RegisterQuery(stream.Query{ID: "q-bench", SourceID: "bench", Delta: 1e-6, Model: "constant"}); err != nil {
		b.Fatal(err)
	}
	agent, err := dsms.DialSourceOptions(r.Addr(), "bench", catalog, dsms.DialOptions{Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent, err := agent.Offer(benchReading(i, 0))
		if err != nil {
			b.Fatal(err)
		}
		if !sent {
			b.Fatal("reading unexpectedly suppressed")
		}
	}
	if err := agent.Drain(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRouterForward measures the per-update cost of the router
// hop: "direct" is one agent straight into a shard, "routed" is the
// same agent through a 2-shard dkf-router, "routed-traced" adds
// cross-hop trace propagation on top. The differences are the
// forwarding and tracing taxes (BENCH_CLUSTER.json).
func BenchmarkRouterForward(b *testing.B) {
	b.Run("direct", benchRouterForwardDirect)
	b.Run("routed", benchRouterForwardRouted)
	b.Run("routed-traced", benchRouterForwardRoutedTraced)
}

// BenchmarkClusterAggregateAnswer measures a cross-shard aggregate
// point read: the router fans a sub-query RPC to every shard holding
// members, merges the exact-sum partials, and rounds once. Scaling the
// shard count scales the RPC fan-out.
func BenchmarkClusterAggregateAnswer(b *testing.B) {
	for _, shards := range []int{2, 4} {
		b.Run(fmt.Sprintf("shards/%d", shards), func(b *testing.B) {
			catalog := testCatalog()
			addrs := benchShards(b, shards)
			r, err := NewRouter("127.0.0.1:0", addrs, Options{})
			if err != nil {
				b.Fatal(err)
			}
			go r.Serve()
			b.Cleanup(func() { r.Close() })

			const nSources = 8
			const steps = 100
			ids := make([]string, nSources)
			for i := range ids {
				ids[i] = fmt.Sprintf("node-%d", i)
			}
			agg := dsms.AggregateQuery{ID: "grid", SourceIDs: ids, Func: dsms.AggSum, Delta: 5, Model: "linear"}
			if err := r.RegisterAggregate(agg); err != nil {
				b.Fatal(err)
			}
			for i, id := range ids {
				a, err := dsms.DialSource(r.Addr(), id, catalog)
				if err != nil {
					b.Fatal(err)
				}
				for s := 0; s < steps; s++ {
					if _, err := a.Offer(benchReading(s, float64(i)*100)); err != nil {
						b.Fatal(err)
					}
				}
				if err := a.Drain(); err != nil {
					b.Fatal(err)
				}
				a.Close()
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.AnswerAggregate("grid", steps-1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRouterForwardAllocBudget gates the routed ingest path on the
// allocation budget pinned in BENCH_CLUSTER.json — the router hop must
// not silently grow per-update garbage.
func TestRouterForwardAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a benchmark")
	}
	raw, err := os.ReadFile("../../../BENCH_CLUSTER.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks map[string]struct {
			AllocsPerOp int64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse BENCH_CLUSTER.json: %v", err)
	}
	budget, ok := doc.Benchmarks["BenchmarkRouterForward/routed"]
	if !ok {
		t.Fatal("BENCH_CLUSTER.json has no BenchmarkRouterForward/routed entry")
	}
	res := testing.Benchmark(benchRouterForwardRouted)
	if got := res.AllocsPerOp(); got > budget.AllocsPerOp {
		t.Fatalf("routed ingest allocates %d/op, budget %d/op (BENCH_CLUSTER.json)", got, budget.AllocsPerOp)
	}
}

// TestRouterForwardTracedAllocBudget gates the traced relay: turning
// on cross-hop trace propagation must not add a single steady-state
// allocation over the untraced routed path — the gate compares the
// traced run against the routed-traced budget AND the plain routed
// budget pinned in BENCH_CLUSTER.json.
func TestRouterForwardTracedAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a benchmark")
	}
	raw, err := os.ReadFile("../../../BENCH_CLUSTER.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks map[string]struct {
			AllocsPerOp int64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse BENCH_CLUSTER.json: %v", err)
	}
	routed, ok := doc.Benchmarks["BenchmarkRouterForward/routed"]
	if !ok {
		t.Fatal("BENCH_CLUSTER.json has no BenchmarkRouterForward/routed entry")
	}
	traced, ok := doc.Benchmarks["BenchmarkRouterForward/routed-traced"]
	if !ok {
		t.Fatal("BENCH_CLUSTER.json has no BenchmarkRouterForward/routed-traced entry")
	}
	if traced.AllocsPerOp > routed.AllocsPerOp {
		t.Fatalf("BENCH_CLUSTER.json pins traced at %d allocs/op above untraced %d — tracing must be alloc-free",
			traced.AllocsPerOp, routed.AllocsPerOp)
	}
	res := testing.Benchmark(benchRouterForwardRoutedTraced)
	if got := res.AllocsPerOp(); got > routed.AllocsPerOp {
		t.Fatalf("traced relay allocates %d/op, untraced budget %d/op (BENCH_CLUSTER.json)", got, routed.AllocsPerOp)
	}
}
