package cluster

import (
	"sync"

	"streamkf/internal/telemetry"
	"streamkf/internal/trace"
)

// Topology event kinds. Events record the cluster's control-plane
// history — who connected, what moved, when epochs advanced — so a
// migration or crash leaves an auditable trail at /eventz even after
// its log lines scroll away.
const (
	EvShardConnect      = "shard_connect"
	EvShardDisconnect   = "shard_disconnect"
	EvShardReconnect    = "shard_reconnect"
	EvMigrationStart    = "migration_start"
	EvMigrationComplete = "migration_complete"
	EvPin               = "pin"
	EvEpochBump         = "epoch_bump"
)

// TopoEvent is one structured topology event.
type TopoEvent struct {
	At       int64   `json:"at_unix_ns"`
	Kind     string  `json:"kind"`
	Shard    int     `json:"shard"`
	SourceID string  `json:"source_id,omitempty"`
	Detail   string  `json:"detail,omitempty"`
	DurMs    float64 `json:"duration_ms,omitempty"`
}

// defaultEventCap bounds the event ring. Topology events are rare
// (connections, migrations, epochs — not per-update), so a small ring
// holds days of history.
const defaultEventCap = 256

// eventLog is a bounded mutex-guarded ring of topology events. The
// control-plane paths that record into it (connect, fail, migrate) are
// not hot paths, so a plain mutex is the right tool — no seqlock.
type eventLog struct {
	reg *telemetry.Registry

	mu    sync.Mutex
	buf   []TopoEvent
	next  int    // ring write cursor
	total uint64 // lifetime count (detects wrap)
}

func newEventLog(reg *telemetry.Registry, capacity int) *eventLog {
	if capacity <= 0 {
		capacity = defaultEventCap
	}
	return &eventLog{reg: reg, buf: make([]TopoEvent, 0, capacity)}
}

// record appends one event, stamping At (trace-clock unix nanoseconds,
// so event times sort consistently against trace trails) when zero.
func (l *eventLog) record(ev TopoEvent) {
	if l == nil {
		return
	}
	if ev.At == 0 {
		ev.At = trace.Now()
	}
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.next] = ev
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.total++
	l.mu.Unlock()
	if l.reg != nil {
		l.reg.Counter("dkf_router_topology_events_total",
			"Topology events recorded by the router, by kind.",
			telemetry.L("kind", ev.Kind)).Inc()
	}
}

// Events returns a newest-first snapshot of the retained events and
// the lifetime total (total > len(events) means the ring wrapped and
// older events were dropped).
func (l *eventLog) Events() ([]TopoEvent, uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TopoEvent, 0, len(l.buf))
	// The ring's oldest entry sits at next when full, at 0 otherwise;
	// walk backwards from the newest.
	n := len(l.buf)
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + n) % n
		out = append(out, l.buf[idx])
	}
	return out, l.total
}
