package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"sort"
	"sync"

	"streamkf/internal/dsms"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/stream"
	"streamkf/internal/telemetry"
	"streamkf/internal/trace"
)

// The Router is the cluster's front door. Sources speak the unmodified
// v2 wire protocol to it — hello/install, pipelined updates, cumulative
// acks, queries — and the router forwards each stream to its owning
// shard (consistent-hash ring, ring.go) over one pooled, pipelined
// upstream connection per shard. Forwards travel in TagForward
// envelopes carrying a route index so the shard's cumulative
// ForwardAcks can be demultiplexed back to the right source; the ack a
// source sees is therefore end-to-end (its update reached the shard's
// filter), and the source's send window gives the cluster end-to-end
// flow control with zero source-side changes.
//
// Concurrency invariants (the whole file leans on these):
//   - route.mu (outer) serialises a stream's forward path against its
//     migration; route.pendMu (inner) guards only the pending window.
//   - The upstream ack pump takes ONLY pendMu, never route.mu, so a
//     migration blocked in an RPC can never deadlock against the acks
//     that RPC's flush produces.
//   - Each upstream has at most ONE outstanding RPC (rpcMu); the
//     reader goroutine routes any non-ForwardAck frame to the waiting
//     RPC, and treats such a frame with no waiter as a fatal upstream
//     error (sticky, surfaced on the next call).
//   - All writes to a downstream source conn go through its downConn
//     mutex, because upstream readers relay acks concurrently with the
//     handler's own replies.

const defaultMaxFrame = 1 << 20

// Options configures a Router.
type Options struct {
	// VNodes is the virtual-node count per shard (0 = DefaultVNodes).
	VNodes int
	// MaxFrame bounds wire frame sizes (0 = 1 MiB).
	MaxFrame int
	// AggSuppress is the cluster budget split β ∈ [0,1): shards run
	// their partials at (1-β)Δ and the router re-suppresses outbound
	// answers within βΔ of the last one it released. β = 0 (the
	// default) reproduces the single-server answer bit-for-bit.
	AggSuppress float64
	// Registry receives router metrics (nil = a fresh registry).
	Registry *telemetry.Registry
	// Logger, nil for silent.
	Logger *slog.Logger
	// Trace enables the router's own flight recorders: each route gets
	// a seqlock event ring recording fwd_rx/fwd_tx/fwd_ack for traced
	// updates, and forwards to hop-capable shards carry the router's
	// timestamps (wire.FeatHopTrace) so the shard can splice the hop
	// into the stream's own trail.
	Trace bool
	// TraceRing is the per-route event capacity (0 = trace default).
	TraceRing int
	// ShardAdmins lists each shard's admin endpoint address (host:port,
	// parallel to the shard address list). Optional; when set, the
	// router's /clusterz federates shard health and /tracez/stream/{id}
	// splices the owning shard's trail into the router's hop events.
	ShardAdmins []string
	// EventCap bounds the topology event ring (0 = 256).
	EventCap int
}

// Router accepts v2-protocol sources and fronts a set of shard servers.
type Router struct {
	ring      *Ring
	opts      Options
	tel       *routerTelemetry
	log       *slog.Logger
	maxFrame  int
	upstreams []*upstream
	downFeats byte // features advertised to sources

	events *eventLog

	ln      net.Listener
	udp     net.PacketConn
	wg      sync.WaitGroup
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool

	routeMu sync.RWMutex
	routes  map[string]*route
	byIdx   []*route

	regMu   sync.Mutex
	queries map[string]stream.Query
	aggs    map[string]*routerAgg
}

// routerAgg is the router's record of a cross-shard aggregate: the
// original query, the member split by owning shard, and the last
// released answer (the outbound re-suppression state).
type routerAgg struct {
	q        dsms.AggregateQuery
	shards   []int            // shards holding members, sorted
	perShard map[int][]string // shard -> member source ids

	mu       sync.Mutex
	cached   float64
	cachedOK bool
	scratch  []float64
}

// pendEntry is one forwarded-but-unacked update: its seq, the verbatim
// update payload (kept for replay after shard failure or migration
// cutover), and the monotonic send stamp for the latency histogram.
// traceID is nonzero when the forward carried hop-trace evidence; the
// ack pump then records the fwd_ack event under the same id.
type pendEntry struct {
	seq     int64
	sentNs  int64
	traceID int64
	buf     []byte
}

// route is the per-stream forwarding state.
type route struct {
	idx      uint32 // dense index, the ForwardAck demux key
	sourceID string

	mu    sync.Mutex // outer: forward path vs migration/reconnect
	shard int
	epoch int64

	pendMu  sync.Mutex // inner: the ONLY lock the ack pump takes
	pending []pendEntry
	free    [][]byte
	down    *downConn

	// rec is the route's flight recorder (nil unless Options.Trace):
	// fwd_rx/fwd_tx/fwd_ack events for traced updates through this
	// route. Written under rt.mu (forward) and pendMu (ack pump) but
	// the recorder itself is a wait-free seqlock — no extra locking.
	rec *trace.Recorder
}

// downConn serialises writes to one downstream source connection.
type downConn struct {
	mu  sync.Mutex
	w   *wire.Writer
	err error
}

func (d *downConn) write(f func(w *wire.Writer) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	if err := f(d.w); err == nil {
		err = d.w.Flush()
		d.err = err
	} else {
		d.err = err
	}
	return d.err
}

func (d *downConn) relayAck(seq int64) {
	// Best effort: if the source conn died the route outlives it and the
	// pending window was already cleared by the ack pump.
	_ = d.write(func(w *wire.Writer) error { return w.Ack(seq) })
}

type rpcReply struct {
	tag wire.Tag
	p   []byte
}

// upstream is the pooled connection to one shard.
type upstream struct {
	shard    int
	addr     string
	maxFrame int
	router   *Router

	mu    sync.Mutex // write lock: w, err, conn, feats
	conn  net.Conn
	w     *wire.Writer
	err   error
	feats byte
	alive bool

	rpcMu      sync.Mutex // one outstanding RPC per upstream
	rpcWaiting bool       // guarded by mu
	rpcCh      chan rpcReply
	dead       chan struct{} // closed when the reader for this conn exits
}

// NewRouter builds a router fronting shards[i] at addr shards[i],
// dials every shard, and starts listening for sources on listenAddr
// (empty = don't listen; useful for tests driving Register/Answer
// directly). Call Serve to accept sources, Close to shut down.
func NewRouter(listenAddr string, shardAddrs []string, opts Options) (*Router, error) {
	if len(shardAddrs) == 0 {
		return nil, errors.New("cluster: no shards")
	}
	if opts.AggSuppress < 0 || opts.AggSuppress >= 1 {
		return nil, fmt.Errorf("cluster: AggSuppress %v outside [0,1)", opts.AggSuppress)
	}
	maxFrame := opts.MaxFrame
	if maxFrame <= 0 {
		maxFrame = defaultMaxFrame
	}
	log := opts.Logger
	if log == nil {
		log = telemetry.NopLogger()
	}
	tel := newRouterTelemetry(opts.Registry, len(shardAddrs))
	r := &Router{
		ring:     NewRing(len(shardAddrs), opts.VNodes),
		opts:     opts,
		tel:      tel,
		log:      log,
		maxFrame: maxFrame,
		events:   newEventLog(tel.reg, opts.EventCap),
		conns:    make(map[net.Conn]struct{}),
		routes:   make(map[string]*route),
		queries:  make(map[string]stream.Query),
		aggs:     make(map[string]*routerAgg),
	}
	for i, addr := range shardAddrs {
		up := &upstream{shard: i, addr: addr, maxFrame: maxFrame, router: r, rpcCh: make(chan rpcReply, 1)}
		if err := up.connect(); err != nil {
			r.Close()
			return nil, err
		}
		r.upstreams = append(r.upstreams, up)
	}
	// Sources get trace relay only when every shard can accept it: a
	// migration must not strand a traced stream on a shard that would
	// reject the frames. The hop-timestamp extension degrades the same
	// way: advertised downstream only when every shard accepts it, so a
	// mixed fleet falls back to plain 65-byte trace relay everywhere.
	r.downFeats = wire.FeatTrace | wire.FeatHopTrace
	for _, up := range r.upstreams {
		up.mu.Lock()
		if up.feats&wire.FeatTrace == 0 {
			r.downFeats = 0
		}
		if up.feats&wire.FeatHopTrace == 0 {
			r.downFeats &^= wire.FeatHopTrace
		}
		up.mu.Unlock()
	}
	if listenAddr != "" {
		ln, err := net.Listen("tcp", listenAddr)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
		r.ln = ln
	}
	return r, nil
}

// Addr returns the router's source-facing TCP address.
func (r *Router) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Ring exposes the placement ring (read-mostly; mutate only via
// Migrate and topology calls).
func (r *Router) Ring() *Ring { return r.ring }

// Telemetry returns the router's metric registry.
func (r *Router) Telemetry() *telemetry.Registry { return r.tel.reg }

// Serve accepts source connections until Close. Blocks.
func (r *Router) Serve() error {
	if r.ln == nil {
		return errors.New("cluster: router has no listener")
	}
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			r.connMu.Lock()
			closing := r.closing
			r.connMu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		r.connMu.Lock()
		if r.closing {
			r.connMu.Unlock()
			conn.Close()
			return nil
		}
		r.conns[conn] = struct{}{}
		r.connMu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handleDown(conn)
		}()
	}
}

// Close shuts the router down: listener, source conns, upstreams.
func (r *Router) Close() error {
	r.connMu.Lock()
	if r.closing {
		r.connMu.Unlock()
		return nil
	}
	r.closing = true
	for conn := range r.conns {
		conn.Close()
	}
	r.connMu.Unlock()
	if r.ln != nil {
		r.ln.Close()
	}
	if r.udp != nil {
		r.udp.Close()
	}
	for _, up := range r.upstreams {
		up.close()
	}
	r.wg.Wait()
	return nil
}

// ---------------------------------------------------------------------------
// Upstream pool

func (up *upstream) connect() error {
	conn, err := net.Dial("tcp", up.addr)
	if err != nil {
		return fmt.Errorf("cluster: shard %d dial: %w", up.shard, err)
	}
	w := wire.NewWriter(conn, 64*1024, up.maxFrame)
	rd := wire.NewReader(conn, 0, up.maxFrame)
	fail := func(err error) error {
		conn.Close()
		return err
	}
	if err := w.WritePreambleFeatures(wire.Version, wire.FeatCluster); err != nil {
		return fail(fmt.Errorf("cluster: shard %d handshake: %w", up.shard, err))
	}
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("cluster: shard %d handshake: %w", up.shard, err))
	}
	ver, feats, err := rd.ReadPreambleFeatures()
	if err != nil {
		return fail(fmt.Errorf("cluster: shard %d handshake: %w", up.shard, err))
	}
	if err := wire.CheckVersion(ver); err != nil {
		return fail(fmt.Errorf("cluster: shard %d: %w", up.shard, err))
	}
	if feats&wire.FeatCluster == 0 {
		return fail(fmt.Errorf("cluster: shard %d does not speak the cluster extension", up.shard))
	}
	dead := make(chan struct{})
	up.mu.Lock()
	up.conn = conn
	up.w = w
	up.err = nil
	up.feats = feats
	up.alive = true
	up.dead = dead
	up.mu.Unlock()
	up.router.tel.upstreamConns.Add(1)
	up.router.events.record(TopoEvent{Kind: EvShardConnect, Shard: up.shard, Detail: up.addr})
	go up.readLoop(rd, conn, dead)
	return nil
}

// fail records a sticky upstream error and tears the connection down.
// Routes keep their pending windows; ReconnectShard replays them.
func (up *upstream) fail(err error) {
	up.mu.Lock()
	if !up.alive {
		up.mu.Unlock()
		return
	}
	up.alive = false
	if up.err == nil {
		up.err = err
	}
	conn := up.conn
	up.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	up.router.tel.upstreamConns.Add(-1)
	up.router.events.record(TopoEvent{Kind: EvShardDisconnect, Shard: up.shard, Detail: err.Error()})
	up.router.log.Warn("upstream shard lost", "shard", up.shard, "err", err)
}

func (up *upstream) close() { up.fail(errors.New("cluster: router closed")) }

// readLoop demultiplexes one upstream connection: ForwardAcks go to the
// ack pump, everything else is the reply to the (single) pending RPC.
func (up *upstream) readLoop(rd *wire.Reader, conn net.Conn, dead chan struct{}) {
	defer close(dead)
	for {
		tag, p, err := rd.Next()
		if err != nil {
			up.fail(fmt.Errorf("cluster: shard %d recv: %w", up.shard, err))
			return
		}
		if tag == wire.TagForwardAck {
			idx, seq, err := wire.DecodeForwardAck(p)
			if err != nil {
				up.fail(fmt.Errorf("cluster: shard %d: %w", up.shard, err))
				return
			}
			up.router.pumpAck(up.shard, idx, seq)
			continue
		}
		up.mu.Lock()
		waiting := up.rpcWaiting
		up.mu.Unlock()
		if waiting {
			// The reply frame aliases the reader's buffer; the waiter
			// outlives this iteration, so hand it a copy.
			up.rpcCh <- rpcReply{tag: tag, p: append([]byte(nil), p...)}
			continue
		}
		if tag == wire.TagError {
			msg, _ := wire.DecodeError(p)
			up.fail(fmt.Errorf("cluster: shard %d error: %s", up.shard, msg))
			return
		}
		up.fail(fmt.Errorf("cluster: shard %d sent unexpected %v", up.shard, tag))
		return
	}
}

// rpc writes one request frame and waits for its reply. The write and
// the rpcWaiting flag flip under up.mu, so the reader (which sees the
// reply only after the request reached the shard) always observes
// waiting == true. The flush also pushes any buffered forwards first —
// FIFO ordering that migration correctness depends on.
func (up *upstream) rpc(write func(w *wire.Writer) error) (rpcReply, error) {
	up.rpcMu.Lock()
	defer up.rpcMu.Unlock()
	up.mu.Lock()
	if up.err != nil {
		err := up.err
		up.mu.Unlock()
		return rpcReply{}, err
	}
	select { // drop a stale reply from a failed predecessor
	case <-up.rpcCh:
	default:
	}
	up.rpcWaiting = true
	dead := up.dead
	err := write(up.w)
	if err == nil {
		err = up.w.Flush()
	}
	if err != nil {
		up.err = err
		up.rpcWaiting = false
		up.mu.Unlock()
		up.fail(err)
		return rpcReply{}, err
	}
	up.mu.Unlock()

	var reply rpcReply
	select {
	case reply = <-up.rpcCh:
	case <-dead:
		up.mu.Lock()
		err = up.err
		up.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("cluster: shard %d connection lost", up.shard)
		}
	}
	up.mu.Lock()
	up.rpcWaiting = false
	up.mu.Unlock()
	if err != nil {
		return rpcReply{}, err
	}
	if reply.tag == wire.TagError {
		msg, _ := wire.DecodeError(reply.p)
		return rpcReply{}, fmt.Errorf("cluster: shard %d: %s", up.shard, msg)
	}
	return reply, nil
}

// pumpAck clears a route's pending window through seq and relays the
// cumulative ack downstream. Takes ONLY pendMu — see the invariants at
// the top of the file.
func (r *Router) pumpAck(shard int, idx uint32, seq int64) {
	r.routeMu.RLock()
	var rt *route
	if int(idx) < len(r.byIdx) {
		rt = r.byIdx[idx]
	}
	r.routeMu.RUnlock()
	if rt == nil {
		return
	}
	now := nowNanos()
	hist := r.tel.fwdLatency[shard]
	rt.pendMu.Lock()
	n := 0
	var ackAt int64
	for n < len(rt.pending) && rt.pending[n].seq <= seq {
		e := &rt.pending[n]
		hist.Observe(now - e.sentNs)
		if e.traceID != 0 && rt.rec != nil {
			// One fwd_ack per traced entry the cumulative ack covers,
			// all stamped with the ack's arrival time.
			if ackAt == 0 {
				ackAt = trace.Now()
			}
			rt.rec.Record(&trace.Event{TraceID: e.traceID, Seq: e.seq, At: ackAt, Kind: trace.KindFwdAck, Aux: int64(shard)})
			r.tel.hopShard.Observe(now - e.sentNs)
		}
		rt.free = append(rt.free, e.buf[:0])
		e.buf = nil
		n++
	}
	if n > 0 {
		rt.pending = rt.pending[:copy(rt.pending, rt.pending[n:])]
	}
	down := rt.down
	rt.pendMu.Unlock()
	if down != nil {
		down.relayAck(seq)
	}
}

// ---------------------------------------------------------------------------
// Routes

// routeFor returns the stream's route, creating it (placed by the ring)
// on first sight. The common path is a read-locked map hit with no
// allocation (map[string(b)] lookup).
func (r *Router) routeFor(id []byte) *route {
	r.routeMu.RLock()
	rt := r.routes[string(id)]
	r.routeMu.RUnlock()
	if rt != nil {
		return rt
	}
	r.routeMu.Lock()
	defer r.routeMu.Unlock()
	if rt = r.routes[string(id)]; rt != nil {
		return rt
	}
	sid := string(id)
	rt = &route{
		idx:      uint32(len(r.byIdx)),
		sourceID: sid,
		shard:    r.ring.Owner(sid),
		epoch:    r.ring.Epoch(),
	}
	if r.opts.Trace {
		rt.rec = trace.New(trace.Options{RingSize: r.opts.TraceRing})
	}
	r.byIdx = append(r.byIdx, rt)
	r.routes[sid] = rt
	return rt
}

// forward ships one update payload to the route's owning shard,
// optionally preceded by the source's trace frame (written adjacently
// under the same upstream lock section so the shard sees them paired).
// The payload is always appended to the pending window — even when the
// upstream is down — because ReconnectShard and Migrate replay from it;
// upstream failure is therefore invisible to the source except as acks
// drying up until its send window backpressures.
//
// When the router traces (rt.rec != nil), a relayed trace frame is
// decoded on the stack, re-encoded with this hop's timestamps toward a
// hop-capable shard (wire.TraceHop), and recorded as fwd_rx/fwd_tx in
// the route's flight recorder. trRxNs is when the trace frame arrived
// from the source (trace clock); zero when there is none.
func (r *Router) forward(rt *route, payload, tracePayload []byte, seq, trRxNs int64, flush bool) int {
	rt.mu.Lock()
	shard := rt.shard
	up := r.upstreams[shard]
	var tid, txNs, epoch int64
	up.mu.Lock()
	if up.err == nil {
		err := error(nil)
		if tracePayload != nil && up.feats&wire.FeatTrace != 0 {
			relay := true
			if rt.rec != nil {
				if d, _, _, derr := wire.DecodeTraceExt(tracePayload); derr == nil {
					tid, txNs, epoch = d.TraceID, trace.Now(), rt.epoch
					if up.feats&wire.FeatHopTrace != 0 {
						relay = false
						err = up.w.TraceHop(&d, wire.TraceHop{
							Idx: rt.idx, Epoch: rt.epoch,
							RxUnixNs: trRxNs, TxUnixNs: txNs,
						})
					}
				}
			}
			if relay && err == nil {
				// Verbatim relay: either the router is not tracing or the
				// shard cannot take the extended payload (it still gets
				// whatever form the source produced).
				err = up.w.RawFrame(wire.TagTrace, tracePayload)
			}
		}
		if err == nil {
			err = up.w.Forward(rt.idx, rt.epoch, payload)
		}
		if err == nil && flush {
			err = up.w.Flush()
		}
		if err != nil {
			up.err = err
			up.mu.Unlock()
			up.fail(err)
			up.mu.Lock()
		}
	}
	up.mu.Unlock()
	if tid != 0 && rt.rec.Sampled(seq) {
		rt.rec.Record(&trace.Event{TraceID: tid, Seq: seq, At: trRxNs, Kind: trace.KindFwdRx, Aux: int64(rt.idx)})
		rt.rec.Record(&trace.Event{TraceID: tid, Seq: seq, At: txNs, Kind: trace.KindFwdTx, Aux: epoch})
		r.tel.hopRouter.Observe(txNs - trRxNs)
	}
	now := nowNanos()
	rt.pendMu.Lock()
	var buf []byte
	if n := len(rt.free); n > 0 {
		buf, rt.free = rt.free[n-1], rt.free[:n-1]
	}
	buf = append(buf[:0], payload...)
	rt.pending = append(rt.pending, pendEntry{seq: seq, sentNs: now, traceID: tid, buf: buf})
	rt.pendMu.Unlock()
	rt.mu.Unlock()
	r.tel.forwarded[shard].Inc()
	return shard
}

// ---------------------------------------------------------------------------
// Downstream (source-facing) connections

func (r *Router) handleDown(conn net.Conn) {
	defer func() {
		r.connMu.Lock()
		delete(r.conns, conn)
		r.connMu.Unlock()
		conn.Close()
	}()
	r.tel.downConns.Add(1)
	defer r.tel.downConns.Add(-1)

	rd := wire.NewReader(conn, 0, r.maxFrame)
	w := wire.NewWriter(conn, 0, r.maxFrame)
	dc := &downConn{w: w}

	ver, err := rd.ReadPreamble()
	if err != nil {
		return
	}
	if err := wire.CheckVersion(ver); err != nil {
		_ = dc.write(func(w *wire.Writer) error { return w.Error(err.Error()) })
		return
	}
	if err := dc.write(func(w *wire.Writer) error {
		return w.WritePreambleFeatures(wire.Version, r.downFeats)
	}); err != nil {
		return
	}

	var (
		boundRoutes []*route // routes this conn is the down side of
		pendTrace   []byte
		havePend    bool
		pendRxNs    int64 // when the stashed trace frame arrived
	)
	defer func() {
		for _, rt := range boundRoutes {
			rt.pendMu.Lock()
			if rt.down == dc {
				rt.down = nil
			}
			rt.pendMu.Unlock()
		}
	}()

	for {
		tag, p, err := rd.Next()
		if err != nil {
			return
		}
		switch tag {
		case wire.TagHello:
			id, err := wire.DecodeHello(p)
			if err != nil {
				_ = dc.write(func(w *wire.Writer) error { return w.Error(err.Error()) })
				return
			}
			rt := r.routeFor([]byte(id))
			inst, err := r.helloRoute(rt)
			if err != nil {
				_ = dc.write(func(w *wire.Writer) error { return w.Error(err.Error()) })
				return
			}
			rt.pendMu.Lock()
			rt.down = dc
			rt.pendMu.Unlock()
			boundRoutes = append(boundRoutes, rt)
			r.tel.helloTotal.Inc()
			if err := dc.write(func(w *wire.Writer) error {
				return w.Install(inst.SourceID, inst.Model, inst.Delta, inst.F, inst.ResumeSeq)
			}); err != nil {
				return
			}

		case wire.TagTrace:
			// Stash for the next update; relayed ahead of its forward so
			// the shard's own trace matching applies. The arrival stamp
			// becomes the hop's fwd_rx time when the router traces.
			pendTrace = append(pendTrace[:0], p...)
			havePend = true
			if r.opts.Trace {
				pendRxNs = trace.Now()
			}

		case wire.TagUpdate:
			// Peek only the routing key — u16-len sourceID then i64 seq —
			// and forward the payload verbatim; the shard does the full
			// decode.
			c := wire.NewCursor(p)
			idb := c.Take(int(c.U16()))
			seq := c.I64()
			if !c.OK() {
				_ = dc.write(func(w *wire.Writer) error { return w.Error("malformed update") })
				return
			}
			rt := r.routeFor(idb)
			var tr []byte
			var trRx int64
			if havePend {
				tr, trRx = pendTrace, pendRxNs
				havePend = false
			}
			r.forward(rt, p, tr, seq, trRx, rd.Buffered() == 0)

		case wire.TagQuery:
			qid, seq, err := rd.DecodeQuery(p)
			if err != nil {
				_ = dc.write(func(w *wire.Writer) error { return w.Error(err.Error()) })
				continue
			}
			vals, err := r.answerQuery(qid, int(seq))
			if err != nil {
				_ = dc.write(func(w *wire.Writer) error { return w.Error(err.Error()) })
				continue
			}
			if err := dc.write(func(w *wire.Writer) error { return w.Answer(qid, vals) }); err != nil {
				return
			}

		default:
			_ = dc.write(func(w *wire.Writer) error {
				return w.Error(fmt.Sprintf("cluster: unexpected frame %v", tag))
			})
			return
		}
	}
}

// helloRoute relays a source hello to the owning shard and returns the
// shard's install. Pending forwards at or below the shard's ResumeSeq
// are cleared here: the RPC's flush pushed every earlier forward ahead
// of the hello, so ResumeSeq reflects them all.
func (r *Router) helloRoute(rt *route) (wire.Install, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	up := r.upstreams[rt.shard]
	reply, err := up.rpc(func(w *wire.Writer) error { return w.Hello(rt.sourceID) })
	if err != nil {
		return wire.Install{}, err
	}
	if reply.tag != wire.TagInstall {
		return wire.Install{}, fmt.Errorf("cluster: shard %d replied %v to hello", rt.shard, reply.tag)
	}
	inst, err := wire.DecodeInstall(reply.p)
	if err != nil {
		return wire.Install{}, err
	}
	rt.pendMu.Lock()
	n := 0
	for n < len(rt.pending) && rt.pending[n].seq <= inst.ResumeSeq {
		rt.free = append(rt.free, rt.pending[n].buf[:0])
		rt.pending[n].buf = nil
		n++
	}
	if n > 0 {
		rt.pending = rt.pending[:copy(rt.pending, rt.pending[n:])]
	}
	rt.pendMu.Unlock()
	return inst, nil
}

// ---------------------------------------------------------------------------
// Queries

// RegisterQuery installs a continuous query for one stream on its
// owning shard.
func (r *Router) RegisterQuery(q stream.Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	shard := r.ring.Owner(q.SourceID)
	up := r.upstreams[shard]
	reply, err := up.rpc(func(w *wire.Writer) error {
		return w.RegisterQuery(wire.ClusterQuery{ID: q.ID, SourceID: q.SourceID, Model: q.Model, Delta: q.Delta, F: q.F})
	})
	if err != nil {
		return err
	}
	if reply.tag != wire.TagRegistered {
		return fmt.Errorf("cluster: shard %d replied %v to register", shard, reply.tag)
	}
	r.regMu.Lock()
	r.queries[q.ID] = q
	r.regMu.Unlock()
	return nil
}

// RegisterAggregate splits a cross-shard aggregate into per-shard
// partial aggregates. Budget ladder: with β = AggSuppress, each shard
// runs at (1-β)Δ — scaled by its member share for sum, full width for
// avg/min/max — so the shard-local PerSourceDelta() allocation yields
// exactly the single-server δ_i when β = 0:
//
//	sum: δ_i = (1-β)Δ·(n_shard/n_total)/n_shard = (1-β)Δ/n_total
//	avg/min/max: δ_i = (1-β)Δ
func (r *Router) RegisterAggregate(q dsms.AggregateQuery) error {
	if err := q.Validate(); err != nil {
		return err
	}
	beta := r.opts.AggSuppress
	per := make(map[int][]string)
	for _, src := range q.SourceIDs {
		s := r.ring.Owner(src)
		per[s] = append(per[s], src)
	}
	shards := make([]int, 0, len(per))
	for s := range per {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	nTotal := float64(len(q.SourceIDs))
	for _, s := range shards {
		members := per[s]
		shardDelta := (1 - beta) * q.Delta
		if q.Func == dsms.AggSum {
			shardDelta *= float64(len(members)) / nTotal
		}
		reply, err := r.upstreams[s].rpc(func(w *wire.Writer) error {
			return w.RegisterAggregate(wire.ClusterAggregate{
				ID: q.ID, Func: string(q.Func), Model: q.Model,
				Delta: shardDelta, F: q.F, Partial: true, SourceIDs: members,
			})
		})
		if err != nil {
			return err
		}
		if reply.tag != wire.TagRegistered {
			return fmt.Errorf("cluster: shard %d replied %v to register", s, reply.tag)
		}
	}
	r.regMu.Lock()
	r.aggs[q.ID] = &routerAgg{q: q, shards: shards, perShard: per}
	r.regMu.Unlock()
	return nil
}

// AnswerAggregate merges per-shard partials into the aggregate answer
// at seq. For sum/avg the shards ship exact-sum expansions and the
// router folds and rounds them — the bit-identical single-server value
// regardless of how members are split. With β > 0 the router serves the
// cached answer while the fresh merge stays within βΔ of it.
func (r *Router) AnswerAggregate(queryID string, seq int) (float64, error) {
	r.regMu.Lock()
	agg := r.aggs[queryID]
	r.regMu.Unlock()
	if agg == nil {
		return 0, fmt.Errorf("cluster: unknown aggregate %s", queryID)
	}
	agg.mu.Lock()
	defer agg.mu.Unlock()
	exp := agg.scratch[:0]
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range agg.shards {
		reply, err := r.upstreams[s].rpc(func(w *wire.Writer) error {
			return w.Query(queryID, int64(seq))
		})
		if err != nil {
			return 0, err
		}
		if reply.tag != wire.TagAnswer {
			return 0, fmt.Errorf("cluster: shard %d replied %v to query", s, reply.tag)
		}
		_, vals, err := wire.DecodeAnswer(reply.p)
		if err != nil {
			return 0, err
		}
		switch agg.q.Func {
		case dsms.AggSum, dsms.AggAvg:
			for _, v := range vals {
				exp = dsms.AddToExpansion(exp, v)
			}
		case dsms.AggMin:
			for _, v := range vals {
				if v < minV {
					minV = v
				}
			}
		default: // AggMax
			for _, v := range vals {
				if v > maxV {
					maxV = v
				}
			}
		}
	}
	agg.scratch = exp
	var val float64
	switch agg.q.Func {
	case dsms.AggSum:
		val = dsms.RoundExpansion(exp)
	case dsms.AggAvg:
		val = dsms.RoundExpansion(exp) / float64(len(agg.q.SourceIDs))
	case dsms.AggMin:
		val = minV
	default:
		val = maxV
	}
	r.tel.aggAnswers.Inc()
	if agg.cachedOK && math.Abs(val-agg.cached) <= r.opts.AggSuppress*agg.q.Delta {
		r.tel.aggSuppressed.Inc()
		return agg.cached, nil
	}
	agg.cached, agg.cachedOK = val, true
	return val, nil
}

// answerQuery resolves a downstream TagQuery: aggregates merge across
// shards, plain queries relay to the stream's current owner.
func (r *Router) answerQuery(queryID string, seq int) ([]float64, error) {
	r.regMu.Lock()
	_, isAgg := r.aggs[queryID]
	q, isPlain := r.queries[queryID]
	r.regMu.Unlock()
	if isAgg {
		v, err := r.AnswerAggregate(queryID, seq)
		if err != nil {
			return nil, err
		}
		return []float64{v}, nil
	}
	if !isPlain {
		return nil, fmt.Errorf("cluster: unknown query %s", queryID)
	}
	shard := r.ring.Owner(q.SourceID)
	reply, err := r.upstreams[shard].rpc(func(w *wire.Writer) error {
		return w.Query(queryID, int64(seq))
	})
	if err != nil {
		return nil, err
	}
	if reply.tag != wire.TagAnswer {
		return nil, fmt.Errorf("cluster: shard %d replied %v to query", shard, reply.tag)
	}
	_, vals, err := wire.DecodeAnswer(reply.p)
	return vals, err
}

// ---------------------------------------------------------------------------
// Shard recovery

// DeadShards returns the indices of upstreams whose connection is down
// — the candidates for ReconnectShard.
func (r *Router) DeadShards() []int {
	var dead []int
	for _, up := range r.upstreams {
		up.mu.Lock()
		if !up.alive {
			dead = append(dead, up.shard)
		}
		up.mu.Unlock()
	}
	return dead
}

// ReconnectShard redials a lost shard and resynchronises: queries and
// aggregates owned by the shard are re-registered (idempotent on the
// shard side — a shard restarting from its WAL already has them), and
// every route on the shard replays its pending window past the shard's
// recovered ResumeSeq. Because the source↔router connection never
// broke, the router also relays the recovered ack downstream — that is
// what reopens the source's send window.
func (r *Router) ReconnectShard(shard int) error {
	if shard < 0 || shard >= len(r.upstreams) {
		return fmt.Errorf("cluster: no shard %d", shard)
	}
	reconnStart := trace.Now()
	up := r.upstreams[shard]
	up.fail(errors.New("cluster: reconnecting")) // idempotent if already down
	if err := up.connect(); err != nil {
		return err
	}

	// Re-register registrations owned by this shard.
	r.regMu.Lock()
	var qs []stream.Query
	var aggs []*routerAgg
	for _, q := range r.queries {
		if r.ring.Owner(q.SourceID) == shard {
			qs = append(qs, q)
		}
	}
	for _, a := range r.aggs {
		if _, ok := a.perShard[shard]; ok {
			aggs = append(aggs, a)
		}
	}
	r.regMu.Unlock()
	beta := r.opts.AggSuppress
	for _, q := range qs {
		reply, err := up.rpc(func(w *wire.Writer) error {
			return w.RegisterQuery(wire.ClusterQuery{ID: q.ID, SourceID: q.SourceID, Model: q.Model, Delta: q.Delta, F: q.F})
		})
		if err != nil {
			return err
		}
		if reply.tag != wire.TagRegistered {
			return fmt.Errorf("cluster: shard %d replied %v to register", shard, reply.tag)
		}
	}
	for _, a := range aggs {
		members := a.perShard[shard]
		shardDelta := (1 - beta) * a.q.Delta
		if a.q.Func == dsms.AggSum {
			shardDelta *= float64(len(members)) / float64(len(a.q.SourceIDs))
		}
		reply, err := up.rpc(func(w *wire.Writer) error {
			return w.RegisterAggregate(wire.ClusterAggregate{
				ID: a.q.ID, Func: string(a.q.Func), Model: a.q.Model,
				Delta: shardDelta, F: a.q.F, Partial: true, SourceIDs: members,
			})
		})
		if err != nil {
			return err
		}
		if reply.tag != wire.TagRegistered {
			return fmt.Errorf("cluster: shard %d replied %v to register", shard, reply.tag)
		}
	}

	// Resync every route on this shard.
	r.routeMu.RLock()
	routes := make([]*route, 0, len(r.byIdx))
	for _, rt := range r.byIdx {
		routes = append(routes, rt)
	}
	r.routeMu.RUnlock()
	for _, rt := range routes {
		rt.mu.Lock()
		if rt.shard != shard {
			rt.mu.Unlock()
			continue
		}
		reply, err := up.rpc(func(w *wire.Writer) error { return w.Hello(rt.sourceID) })
		if err != nil {
			rt.mu.Unlock()
			return err
		}
		if reply.tag != wire.TagInstall {
			rt.mu.Unlock()
			return fmt.Errorf("cluster: shard %d replied %v to hello", shard, reply.tag)
		}
		inst, err := wire.DecodeInstall(reply.p)
		if err != nil {
			rt.mu.Unlock()
			return err
		}
		resume := inst.ResumeSeq
		rt.pendMu.Lock()
		n := 0
		for n < len(rt.pending) && rt.pending[n].seq <= resume {
			rt.free = append(rt.free, rt.pending[n].buf[:0])
			rt.pending[n].buf = nil
			n++
		}
		if n > 0 {
			rt.pending = rt.pending[:copy(rt.pending, rt.pending[n:])]
		}
		replay := make([][]byte, len(rt.pending))
		for i := range rt.pending {
			replay[i] = rt.pending[i].buf
		}
		down := rt.down
		rt.pendMu.Unlock()
		up.mu.Lock()
		werr := up.err
		for _, buf := range replay {
			if werr != nil {
				break
			}
			werr = up.w.Forward(rt.idx, rt.epoch, buf)
		}
		if werr == nil {
			werr = up.w.Flush()
		}
		up.mu.Unlock()
		rt.mu.Unlock()
		if werr != nil {
			up.fail(werr)
			return werr
		}
		if down != nil && resume >= 0 {
			down.relayAck(resume)
		}
	}
	r.tel.reconnects.Inc()
	r.events.record(TopoEvent{
		Kind: EvShardReconnect, Shard: shard,
		DurMs: float64(trace.Now()-reconnStart) / 1e6,
	})
	return nil
}
