// Package cluster lifts the single-server DSMS to a sharded cluster:
// a consistent-hash placement ring maps every source id to an owning
// shard, a Router speaks the unmodified v2 wire protocol to sources
// and forwards their updates to the owning shard over pooled pipelined
// upstream connections, cross-shard aggregates are answered by merging
// per-shard partials, and live streams migrate between shards by
// checkpoint snapshot plus ResumeSeq cutover. Sources need zero
// changes: to them the router is just a DSMS server.
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per shard — enough that the
// FNV point spread keeps shard loads within a small factor of the mean
// (see FuzzRingPlacement) while the ring stays tiny.
const DefaultVNodes = 64

// fnv1a is the 64-bit FNV-1a hash run through a splitmix64-style
// finalizer. Raw FNV-1a disperses poorly in the high bits for the
// near-identical strings a ring hashes ("shard-3-vnode-17", sequential
// source ids), and ring ordering is dominated by the high bits — a
// freshly added shard's vnodes can cluster and capture nothing. The
// finalizer avalanches every input bit across the word while keeping
// the function deterministic across processes and platforms, which is
// what makes every router and every test agree on sourceID→shard
// placement.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash placement ring with virtual nodes and a
// versioned topology epoch. Ownership is deterministic: the same shard
// set and vnode count always produce the same mapping, so routers,
// shards and tests can compute placement independently. Individual
// streams can be pinned away from their hash owner (the migration
// escape hatch); every mutation bumps the epoch.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	shards []int // live shard indices, sorted
	points []ringPoint
	pins   map[string]int // sourceID -> shard, overriding hash placement
	epoch  int64
}

// NewRing builds a ring of shards 0..shards-1 with vnodes virtual
// nodes per shard (0 means DefaultVNodes). The fresh ring is epoch 1.
func NewRing(shards, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, pins: make(map[string]int)}
	for i := 0; i < shards; i++ {
		r.shards = append(r.shards, i)
	}
	r.rebuild()
	r.epoch = 1
	return r
}

// rebuild recomputes the sorted point list. Caller holds mu.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for _, s := range r.shards {
		for v := 0; v < r.vnodes; v++ {
			h := fnv1a(fmt.Sprintf("shard-%d-vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (astronomically rare but possible) break by shard
		// index so the ordering — and therefore ownership — stays total
		// and deterministic.
		return a.shard < b.shard
	})
}

// Owner returns the shard owning sourceID: its pin if one exists, else
// the first ring point at or after the id's hash (wrapping).
func (r *Ring) Owner(sourceID string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ownerLocked(sourceID)
}

func (r *Ring) ownerLocked(sourceID string) int {
	if s, ok := r.pins[sourceID]; ok {
		return s
	}
	if len(r.points) == 0 {
		return -1
	}
	h := fnv1a(sourceID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Epoch returns the current topology version.
func (r *Ring) Epoch() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Shards returns the live shard indices, sorted.
func (r *Ring) Shards() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]int(nil), r.shards...)
}

// AddShard adds a shard index to the ring, bumping the epoch. The
// consistent-hash property: only streams whose new owner IS the added
// shard change placement; everything else keeps its owner.
func (r *Ring) AddShard(shard int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.shards {
		if s == shard {
			return fmt.Errorf("cluster: shard %d already in ring", shard)
		}
	}
	r.shards = append(r.shards, shard)
	sort.Ints(r.shards)
	r.rebuild()
	r.epoch++
	return nil
}

// RemoveShard removes a shard index, bumping the epoch. Pins to the
// removed shard are dropped (the pinned streams fall back to hash
// placement among the survivors). Streams owned by surviving shards
// keep their owners.
func (r *Ring) RemoveShard(shard int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.shards[:0]
	found := false
	for _, s := range r.shards {
		if s == shard {
			found = true
			continue
		}
		kept = append(kept, s)
	}
	if !found {
		return fmt.Errorf("cluster: shard %d not in ring", shard)
	}
	r.shards = kept
	for id, s := range r.pins {
		if s == shard {
			delete(r.pins, id)
		}
	}
	r.rebuild()
	r.epoch++
	return nil
}

// Pin overrides sourceID's placement to shard — the durable half of a
// migration — and bumps the epoch. Pinning to the hash owner simply
// removes the override.
func (r *Ring) Pin(sourceID string, shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pins, sourceID)
	if r.ownerLocked(sourceID) != shard {
		r.pins[sourceID] = shard
	}
	r.epoch++
}

// Pinned returns sourceID's pin, if any.
func (r *Ring) Pinned(sourceID string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.pins[sourceID]
	return s, ok
}
