package cluster

import (
	"errors"
	"fmt"

	"streamkf/internal/dsms/wire"
	"streamkf/internal/trace"
)

// Live stream migration. The sequence, with the route lock held end to
// end so no forward can slip between the snapshot and the cutover:
//
//  1. Snapshot RPC to the old shard. The RPC's flush pushes every
//     buffered forward ahead of it (FIFO per upstream), so the snapshot
//     — the checkpoint encoding of the stream's queries, counters and
//     filter state — covers everything the router ever forwarded. The
//     old shard marks the stream released and rejects later forwards.
//  2. Restore RPC installs the snapshot on the target, which replies
//     StateAck(resumeSeq): the last update seq its adopted state
//     covers. On a durable target the state is checkpointed before the
//     ack, so a crash after this point recovers the stream.
//  3. Cutover: pending forwards at or below resumeSeq are acked
//     through to the source (they are inside the transferred state);
//     the rest are re-forwarded to the target, which resumes the
//     filter pair from the snapshot — no re-bootstrap, no dropped
//     acked update. The ring pins the stream to the target so future
//     placement (queries, reconnects) agrees.
//
// The source notices nothing: its connection, its install, and its
// cumulative ack stream are all continuous.

// Migrate moves sourceID's stream to the target shard.
func (r *Router) Migrate(sourceID string, target int) error {
	if target < 0 || target >= len(r.upstreams) {
		return fmt.Errorf("cluster: no shard %d", target)
	}
	// Migrating a member of a registered aggregate would strand its
	// shard-local partial (the aggregate split is fixed at registration);
	// refuse rather than silently double-count.
	r.regMu.Lock()
	for id, a := range r.aggs {
		for _, members := range a.perShard {
			for _, m := range members {
				if m == sourceID {
					r.regMu.Unlock()
					return fmt.Errorf("cluster: %s is a member of aggregate %s; re-register the aggregate instead of migrating", sourceID, id)
				}
			}
		}
	}
	r.regMu.Unlock()

	rt := r.routeFor([]byte(sourceID))
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.shard == target {
		return nil
	}
	oldUp, newUp := r.upstreams[rt.shard], r.upstreams[target]
	epoch := r.ring.Epoch() + 1 // the epoch Pin will establish below
	migStart := trace.Now()
	r.events.record(TopoEvent{
		Kind: EvMigrationStart, Shard: oldUp.shard, SourceID: sourceID,
		Detail: fmt.Sprintf("to shard %d", target),
	})

	reply, err := oldUp.rpc(func(w *wire.Writer) error { return w.Snapshot(sourceID, epoch) })
	if err != nil {
		return fmt.Errorf("cluster: snapshot %s on shard %d: %w", sourceID, oldUp.shard, err)
	}
	if reply.tag != wire.TagStateAck {
		return fmt.Errorf("cluster: shard %d replied %v to snapshot", oldUp.shard, reply.tag)
	}
	snap, err := wire.DecodeStateAck(reply.p)
	if err != nil {
		return err
	}
	if len(snap.Payload) == 0 {
		return errors.New("cluster: empty migration snapshot")
	}

	reply, err = newUp.rpc(func(w *wire.Writer) error { return w.Restore(epoch, snap.Payload) })
	if err != nil {
		return fmt.Errorf("cluster: restore %s on shard %d: %w", sourceID, target, err)
	}
	if reply.tag != wire.TagStateAck {
		return fmt.Errorf("cluster: shard %d replied %v to restore", target, reply.tag)
	}
	ack, err := wire.DecodeStateAck(reply.p)
	if err != nil {
		return err
	}
	resume := ack.ResumeSeq

	// Cutover: ack the transferred prefix, replay the suffix on target.
	rt.pendMu.Lock()
	n := 0
	for n < len(rt.pending) && rt.pending[n].seq <= resume {
		rt.free = append(rt.free, rt.pending[n].buf[:0])
		rt.pending[n].buf = nil
		n++
	}
	if n > 0 {
		rt.pending = rt.pending[:copy(rt.pending, rt.pending[n:])]
	}
	replay := make([][]byte, len(rt.pending))
	for i := range rt.pending {
		replay[i] = rt.pending[i].buf
	}
	down := rt.down
	rt.pendMu.Unlock()

	newUp.mu.Lock()
	werr := newUp.err
	for _, buf := range replay {
		if werr != nil {
			break
		}
		werr = newUp.w.Forward(rt.idx, epoch, buf)
	}
	if werr == nil {
		werr = newUp.w.Flush()
	}
	newUp.mu.Unlock()
	if werr != nil {
		newUp.fail(werr)
		return fmt.Errorf("cluster: replay to shard %d: %w", target, werr)
	}

	r.ring.Pin(sourceID, target)
	rt.shard = target
	rt.epoch = r.ring.Epoch()
	r.tel.migrations.Inc()
	r.events.record(TopoEvent{
		Kind: EvPin, Shard: target, SourceID: sourceID,
		Detail: fmt.Sprintf("pinned off shard %d", oldUp.shard),
	})
	r.events.record(TopoEvent{
		Kind: EvEpochBump, Shard: target,
		Detail: fmt.Sprintf("epoch %d", rt.epoch),
	})
	r.events.record(TopoEvent{
		Kind: EvMigrationComplete, Shard: target, SourceID: sourceID,
		Detail: fmt.Sprintf("from shard %d, resume seq %d", oldUp.shard, resume),
		DurMs:  float64(trace.Now()-migStart) / 1e6,
	})
	r.log.Info("stream migrated", "source", sourceID, "from", oldUp.shard, "to", target, "resume_seq", resume)

	// The transferred prefix is durable on the target; release the
	// source's window for it. The agent's monotonic ack guard makes a
	// duplicate or reordered cumulative ack harmless.
	if down != nil && resume >= 0 {
		down.relayAck(resume)
	}
	return nil
}
