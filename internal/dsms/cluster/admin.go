package cluster

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"streamkf/internal/dsms"
)

// Router admin endpoints, mirroring the shard server's admin surface
// (internal/dsms/admin.go): /metrics for scrapes, /healthz for
// liveness, /ringz for the placement picture, pprof for profiles.

// Ringz is the /ringz document: the topology as this router sees it.
type Ringz struct {
	Epoch      int64          `json:"epoch"`
	VNodes     int            `json:"vnodes"`
	Shards     []RingzShard   `json:"shards"`
	Pins       map[string]int `json:"pins,omitempty"`
	Routes     int            `json:"routes"`
	Aggregates []string       `json:"aggregates,omitempty"`
}

// RingzShard is one shard's row in /ringz.
type RingzShard struct {
	Index int    `json:"index"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
}

// RingzSnapshot builds the /ringz document.
func (r *Router) RingzSnapshot() Ringz {
	r.ring.mu.RLock()
	z := Ringz{Epoch: r.ring.epoch, VNodes: r.ring.vnodes}
	if len(r.ring.pins) > 0 {
		z.Pins = make(map[string]int, len(r.ring.pins))
		for id, s := range r.ring.pins {
			z.Pins[id] = s
		}
	}
	r.ring.mu.RUnlock()
	for _, up := range r.upstreams {
		up.mu.Lock()
		z.Shards = append(z.Shards, RingzShard{Index: up.shard, Addr: up.addr, Alive: up.alive})
		up.mu.Unlock()
	}
	r.routeMu.RLock()
	z.Routes = len(r.byIdx)
	r.routeMu.RUnlock()
	r.regMu.Lock()
	for id := range r.aggs {
		z.Aggregates = append(z.Aggregates, id)
	}
	r.regMu.Unlock()
	return z
}

// RingzHandler serves the topology as JSON.
func RingzHandler(r *Router) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.RingzSnapshot())
	}
}

// AdminServer is the router's admin HTTP listener.
type AdminServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Addr returns the admin listener's address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close shuts the admin server down.
func (a *AdminServer) Close() error {
	err := a.srv.Close()
	<-a.done
	return err
}

// ServeAdmin starts the router admin mux on addr.
func ServeAdmin(r *Router, addr string, logger *slog.Logger) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	noStore := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Cache-Control", "no-store")
			h(w, req)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", noStore(dsms.MetricsHandler(r.Telemetry())))
	mux.HandleFunc("/ringz", noStore(RingzHandler(r)))
	mux.HandleFunc("/healthz", noStore(func(w http.ResponseWriter, req *http.Request) {
		for _, up := range r.upstreams {
			up.mu.Lock()
			alive := up.alive
			up.mu.Unlock()
			if !alive {
				http.Error(w, "upstream shard down", http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	a := &AdminServer{ln: ln, srv: srv, done: make(chan struct{})}
	go func() {
		defer close(a.done)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && logger != nil {
			logger.Error("router admin server", "err", err)
		}
	}()
	return a, nil
}
