package cluster

import (
	"encoding/json"
	"fmt"
	"html"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"streamkf/internal/dsms"
	"streamkf/internal/trace"
)

// Router admin endpoints, mirroring the shard server's admin surface
// (internal/dsms/admin.go):
//
//	/metrics            Prometheus text exposition of the router registry
//	/healthz            rolled-up cluster verdict: ok|degraded|unhealthy (?verbose=1 for JSON)
//	/statusz            cluster dashboard (HTML)
//	/clusterz           federated fleet view (HTML; ?format=json for the document)
//	/ringz              the placement picture: epoch, shards, pins, routes
//	/eventz             the topology event log, newest first (?limit=)
//	/tracez             recent forwarding trace events (?source=&kind=&decision=&limit=)
//	/tracez/stream/{id} spliced source→router→shard trail for one stream
//	/debug/pprof/*      the standard Go profiling endpoints
//
// Every response carries Cache-Control: no-store — these are live
// state, and a cached cluster verdict is worse than none.

// Ringz is the /ringz document: the topology as this router sees it.
type Ringz struct {
	Epoch      int64          `json:"epoch"`
	VNodes     int            `json:"vnodes"`
	Shards     []RingzShard   `json:"shards"`
	Pins       map[string]int `json:"pins,omitempty"`
	Routes     int            `json:"routes"`
	Aggregates []string       `json:"aggregates,omitempty"`
}

// RingzShard is one shard's row in /ringz.
type RingzShard struct {
	Index int    `json:"index"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
}

// RingzSnapshot builds the /ringz document.
func (r *Router) RingzSnapshot() Ringz {
	r.ring.mu.RLock()
	z := Ringz{Epoch: r.ring.epoch, VNodes: r.ring.vnodes}
	if len(r.ring.pins) > 0 {
		z.Pins = make(map[string]int, len(r.ring.pins))
		for id, s := range r.ring.pins {
			z.Pins[id] = s
		}
	}
	r.ring.mu.RUnlock()
	for _, up := range r.upstreams {
		up.mu.Lock()
		z.Shards = append(z.Shards, RingzShard{Index: up.shard, Addr: up.addr, Alive: up.alive})
		up.mu.Unlock()
	}
	r.routeMu.RLock()
	z.Routes = len(r.byIdx)
	r.routeMu.RUnlock()
	r.regMu.Lock()
	for id := range r.aggs {
		z.Aggregates = append(z.Aggregates, id)
	}
	r.regMu.Unlock()
	return z
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// RingzHandler serves the topology as JSON.
func RingzHandler(r *Router) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.RingzSnapshot())
	}
}

// HealthzHandler serves the rolled-up cluster verdict: 200 for ok and
// degraded (the cluster still ingests), 503 for unhealthy — a dead
// upstream data connection or an unhealthy shard. Plain text
// `<status>\n` by default; `?verbose=1` returns the full /clusterz
// document. Each probe polls the shard admin endpoints, so the probe
// interval bounds the federation staleness.
func HealthzHandler(r *Router) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		cz := r.Clusterz()
		code := http.StatusOK
		if cz.Status == "unhealthy" {
			code = http.StatusServiceUnavailable
		}
		if req.URL.Query().Get("verbose") != "" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(cz)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(code)
		fmt.Fprintf(w, "%s\n", cz.Status)
	}
}

// eventzResponse is the /eventz document.
type eventzResponse struct {
	// Total counts every event ever recorded; Events holds the newest
	// Count of them still in the ring.
	Total  uint64      `json:"total"`
	Count  int         `json:"count"`
	Events []TopoEvent `json:"events"`
}

// EventzHandler serves the topology event log, newest first.
// Parameters: limit (default: the whole ring).
func EventzHandler(r *Router) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		evs, total := r.events.Events()
		if v := req.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit: "+v, http.StatusBadRequest)
				return
			}
			if n < len(evs) {
				evs = evs[:n]
			}
		}
		writeJSON(w, eventzResponse{Total: total, Count: len(evs), Events: evs})
	}
}

// ClusterzHandler serves the federated fleet view: HTML by default,
// the JSON document with ?format=json.
func ClusterzHandler(r *Router) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		cz := r.Clusterz()
		if req.URL.Query().Get("format") == "json" {
			writeJSON(w, cz)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		var b strings.Builder
		b.WriteString("<!DOCTYPE html><html><head><title>dkf clusterz</title>")
		b.WriteString(clusterStyle)
		b.WriteString("</head><body><h1>DKF cluster fleet</h1>")
		b.WriteString(routerNav)
		fmt.Fprintf(&b, `<p>Cluster: <span class="badge %s">%s</span> <span class="muted">epoch %d · %d migrations · %d topology events</span></p>`,
			badgeClass(cz.Status), cz.Status, cz.Epoch, cz.MigrationsTotal, cz.EventsTotal)
		b.WriteString("<h2>Shards</h2><table><tr><th class=num>shard</th><th>addr</th><th>conn</th><th>verdict</th><th class=num>up</th><th class=num>ingest/s</th><th class=num>shed/s</th><th class=num>errors/s</th><th class=num>ckpt age</th><th class=num>routes</th><th class=num>pending</th><th class=num>forwarded</th><th>detail</th></tr>")
		for _, sh := range cz.Shards {
			conn := "up"
			if !sh.Connected {
				conn = `<span class="active">down</span>`
			}
			age := "—"
			if sh.WALCheckpointAgeSeconds >= 0 {
				age = fmt.Sprintf("%.1fs", sh.WALCheckpointAgeSeconds)
			}
			detail := sh.Error
			for _, reason := range sh.Reasons {
				if detail != "" {
					detail += "; "
				}
				detail += reason.Signal
			}
			fmt.Fprintf(&b, `<tr><td class=num>%d</td><td>%s</td><td>%s</td><td><span class="badge %s">%s</span></td><td class=num>%s</td><td class=num>%.3g</td><td class=num>%.3g</td><td class=num>%.3g</td><td class=num>%s</td><td class=num>%d</td><td class=num>%d</td><td class=num>%d</td><td class="muted">%s</td></tr>`,
				sh.Shard, html.EscapeString(sh.Addr), conn, badgeClass(sh.Status), sh.Status,
				(time.Duration(sh.UptimeSeconds * float64(time.Second))).Truncate(time.Second),
				sh.IngestRatePerSec, sh.ShedRatePerSec, sh.ErrorRatePerSec, age,
				sh.Routes, sh.PendingUpdates, sh.ForwardedTotal, html.EscapeString(detail))
		}
		b.WriteString("</table>")
		writeEventTable(&b, r, 20)
		b.WriteString("</body></html>")
		fmt.Fprint(w, b.String())
	}
}

// badgeClass maps a verdict to its dashboard badge style; statuses the
// stylesheet doesn't know (unreachable, unknown) render grey.
func badgeClass(status string) string {
	switch status {
	case "ok", "degraded", "unhealthy":
		return status
	}
	return "grey"
}

// writeEventTable appends the newest topology events to an HTML page.
func writeEventTable(b *strings.Builder, r *Router, limit int) {
	evs, total := r.events.Events()
	if len(evs) > limit {
		evs = evs[:limit]
	}
	if len(evs) == 0 {
		return
	}
	fmt.Fprintf(b, `<h2>Topology events <span class="muted">(%d of %d)</span></h2>`, len(evs), total)
	b.WriteString("<table><tr><th>when</th><th>kind</th><th class=num>shard</th><th>stream</th><th>detail</th><th class=num>ms</th></tr>")
	for _, ev := range evs {
		dur := ""
		if ev.DurMs > 0 {
			dur = fmt.Sprintf("%.2f", ev.DurMs)
		}
		fmt.Fprintf(b, `<tr><td class="muted">%s</td><td>%s</td><td class=num>%d</td><td>%s</td><td class="muted">%s</td><td class=num>%s</td></tr>`,
			time.Unix(0, ev.At).UTC().Format("15:04:05.000"), html.EscapeString(ev.Kind), ev.Shard,
			html.EscapeString(ev.SourceID), html.EscapeString(ev.Detail), dur)
	}
	b.WriteString("</table>")
}

// StatuszHandler serves the router dashboard: the cluster verdict
// badge, build identity, the ring picture, and recent topology events.
func StatuszHandler(r *Router) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		var b strings.Builder
		b.WriteString("<!DOCTYPE html><html><head><title>dkf router statusz</title>")
		b.WriteString(clusterStyle)
		b.WriteString("</head><body><h1>DKF router status</h1>")
		b.WriteString(routerNav)

		cz := r.Clusterz()
		fmt.Fprintf(&b, `<p>Cluster: <span class="badge %s">%s</span>`, badgeClass(cz.Status), cz.Status)
		fmt.Fprintf(&b, ` <span class="muted">version %s · %s · up %s · epoch %d</span></p>`,
			html.EscapeString(dsms.Version), runtime.Version(),
			time.Since(telEpoch).Truncate(time.Second), cz.Epoch)

		z := r.RingzSnapshot()
		b.WriteString("<h2>Ring</h2><table><tr><th class=num>shard</th><th>addr</th><th>admin</th><th>conn</th><th>verdict</th><th class=num>routes</th><th class=num>pending</th></tr>")
		for i, s := range z.Shards {
			conn := "up"
			if !s.Alive {
				conn = `<span class="active">down</span>`
			}
			verdict, routes, pending := "unknown", 0, 0
			if i < len(cz.Shards) {
				verdict, routes, pending = cz.Shards[i].Status, cz.Shards[i].Routes, cz.Shards[i].PendingUpdates
			}
			fmt.Fprintf(&b, `<tr><td class=num>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td class=num>%d</td><td class=num>%d</td></tr>`,
				s.Index, html.EscapeString(s.Addr), html.EscapeString(r.shardAdmin(s.Index)),
				conn, verdict, routes, pending)
		}
		b.WriteString("</table>")
		fmt.Fprintf(&b, `<p class="muted">%d routes · %d pins · %d aggregates · trace %v</p>`,
			z.Routes, len(z.Pins), len(z.Aggregates), r.TraceEnabled())
		writeEventTable(&b, r, 20)
		b.WriteString("</body></html>")
		fmt.Fprint(w, b.String())
	}
}

// tracezResponse is the router /tracez document, shaped like the shard
// server's so one scraper reads both.
type tracezResponse struct {
	Enabled bool              `json:"enabled"`
	Count   int               `json:"count"`
	Events  []dsms.TraceEntry `json:"events"`
}

// TracezHandler serves recent forwarding trace events, newest first.
// Query parameters: source (stream id), kind (event kind name),
// decision (decision name), limit (default 100).
func TracezHandler(r *Router) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		limit := 100
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit: "+v, http.StatusBadRequest)
				return
			}
			limit = n
		}
		var kind trace.Kind
		if v := q.Get("kind"); v != "" {
			k, err := trace.ParseKind(v)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			kind = k
		}
		var dec trace.Decision
		if v := q.Get("decision"); v != "" {
			d, err := trace.ParseDecision(v)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			dec = d
		}
		resp := tracezResponse{Enabled: r.TraceEnabled()}
		resp.Events = r.TraceRecent(limit, q.Get("source"), kind, dec)
		resp.Count = len(resp.Events)
		writeJSON(w, resp)
	}
}

// TracezStreamHandler serves the spliced cross-node trail for one
// stream (by source id or query id).
func TracezStreamHandler(r *Router) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		id := strings.TrimPrefix(req.URL.Path, "/tracez/stream/")
		if id == "" || strings.Contains(id, "/") {
			http.Error(w, "usage: /tracez/stream/{source-or-query-id}", http.StatusBadRequest)
			return
		}
		st, err := r.TraceStream(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	}
}

// clusterStyle is the router dashboards' inline stylesheet, matching
// the shard server's statusz look.
const clusterStyle = `<style>
body{font-family:system-ui,sans-serif;margin:1.5rem;color:#1a1a1a;max-width:70rem}
h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:1.6rem}
table{border-collapse:collapse;width:100%}
th,td{text-align:left;padding:.3rem .6rem;border-bottom:1px solid #ddd;font-size:.85rem}
th{color:#555;font-weight:600}
.num{text-align:right;font-variant-numeric:tabular-nums}
.badge{display:inline-block;padding:.15rem .6rem;border-radius:.3rem;color:#fff;font-weight:600}
.ok{background:#2a7d2a}.degraded{background:#c77d00}.unhealthy{background:#b3261e}.grey{background:#888}
.active{color:#b3261e;font-weight:600}
.muted{color:#888}
nav a{margin-right:1rem}
</style>`

// routerNav is the shared dashboard navigation bar.
const routerNav = `<nav><a href="/metrics">/metrics</a><a href="/clusterz">/clusterz</a><a href="/ringz">/ringz</a><a href="/eventz">/eventz</a><a href="/tracez">/tracez</a><a href="/healthz?verbose=1">/healthz</a><a href="/debug/pprof/">/debug/pprof</a></nav>`

// AdminServer is the router's admin HTTP listener.
type AdminServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Addr returns the admin listener's address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close shuts the admin server down.
func (a *AdminServer) Close() error {
	err := a.srv.Close()
	<-a.done
	return err
}

// ServeAdmin starts the router admin mux on addr.
func ServeAdmin(r *Router, addr string, logger *slog.Logger) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", dsms.MetricsHandler(r.Telemetry()))
	mux.HandleFunc("/ringz", RingzHandler(r))
	mux.HandleFunc("/healthz", HealthzHandler(r))
	mux.HandleFunc("/statusz", StatuszHandler(r))
	mux.HandleFunc("/clusterz", ClusterzHandler(r))
	mux.HandleFunc("/eventz", EventzHandler(r))
	mux.HandleFunc("/tracez", TracezHandler(r))
	mux.HandleFunc("/tracez/stream/", TracezStreamHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: noStore(mux), ReadHeaderTimeout: 10 * time.Second}
	a := &AdminServer{ln: ln, srv: srv, done: make(chan struct{})}
	go func() {
		defer close(a.done)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && logger != nil {
			logger.Error("router admin server", "err", err)
		}
	}()
	return a, nil
}

// noStore wraps the admin mux so every endpoint forbids caching:
// metrics, verdicts and traces are live state.
func noStore(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		next.ServeHTTP(w, req)
	})
}
