package cluster

import (
	"fmt"
	"testing"
	"time"

	"streamkf/internal/dsms"
	"streamkf/internal/gen"
	"streamkf/internal/netsim"
	"streamkf/internal/stream"
	"streamkf/internal/wal"
)

// TestClusterShardCrashRecovery kills a durable shard mid-ingest,
// restarts it from its WAL on the same address, resynchronises it
// through the router (replaying the unacked forward window from the
// shard's recovered ResumeSeq), finishes the workload, and requires
// the merged cross-shard aggregate to match a single server that never
// crashed — bit for bit. The workload interleave is scheduled through
// netsim.Link so the source ordering (including bursts from duplicated
// slots and adjacent swaps) is deterministic and reproducible.
func TestClusterShardCrashRecovery(t *testing.T) {
	const nSources = 4
	const steps = 300
	sources := make([]string, nSources)
	data := make(map[string][]stream.Reading, nSources)
	for i := range sources {
		sources[i] = fmt.Sprintf("node-%d", i)
		data[sources[i]] = gen.Ramp(steps, float64(2+i), 1.2+0.2*float64(i), 0.9, int64(13+i))
	}
	agg := dsms.AggregateQuery{ID: "grid", SourceIDs: sources, Func: dsms.AggSum, Delta: 5, Model: "linear"}

	// Reference: a single server that never crashes.
	single := dsms.NewServer(testCatalog())
	if err := single.RegisterAggregate(agg); err != nil {
		t.Fatal(err)
	}
	ts, err := dsms.NewTCPServer(single, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ts.Serve()
	defer ts.Close()
	want := driveTCP(t, ts.Addr(), "grid", data, []int{steps - 1})

	// Cluster: shard 0 in-memory, shard 1 durable (the one we crash).
	shard0 := dsms.NewServer(testCatalog())
	addr0 := startShard(t, shard0, 0).Addr()
	dir := t.TempDir()
	openDurable := func() *dsms.Server {
		s, err := dsms.Open(testCatalog(), dir, dsms.DurabilityOptions{Sync: wal.SyncAlways})
		if err != nil {
			t.Fatalf("open durable shard: %v", err)
		}
		return s
	}
	shard1 := openDurable()
	shard1.SetShardInfo(1, 0)
	ts1, err := dsms.NewTCPServer(shard1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ts1.Serve()
	addr1 := ts1.Addr()

	router, err := NewRouter("127.0.0.1:0", []string{addr0, addr1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	go router.Serve()
	defer router.Close()
	if err := router.RegisterAggregate(agg); err != nil {
		t.Fatal(err)
	}
	// The crash only matters if shard 1 owns someone.
	onCrashed := 0
	for _, id := range sources {
		if router.Ring().Owner(id) == 1 {
			onCrashed++
		}
	}
	if onCrashed == 0 || onCrashed == nSources {
		t.Fatalf("degenerate placement: %d of %d sources on the crashing shard", onCrashed, nSources)
	}

	catalog := testCatalog()
	agents := make(map[string]*dsms.RemoteAgent, nSources)
	for _, id := range sources {
		a, err := dsms.DialSource(router.Addr(), id, catalog)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents[id] = a
	}

	// Deterministic interleave: every slot in the schedule advances one
	// source by one reading; duplicated slots burst a source twice in a
	// row, swapped slots flip which source goes first. Dropped slots are
	// made up at the end so every reading is delivered exactly once.
	schedule := netsim.Link{DropEvery: 11, DupEvery: 7, SwapEvery: 5}.Schedule(nSources * steps)
	next := make(map[string]int, nSources)
	crashAt := len(schedule) / 2
	inWindow := make(map[string]int, nSources) // offers while the shard is down
	down := false

	offer := func(id string) {
		i := next[id]
		if i >= steps {
			return
		}
		// While the durable shard is down its routes get no acks; stay
		// inside the source send window so Offer never blocks.
		if down && router.Ring().Owner(id) == 1 {
			if inWindow[id] >= dsms.DefaultWindow/2 {
				return
			}
			inWindow[id]++
		}
		if _, err := agents[id].Offer(data[id][i]); err != nil {
			t.Fatalf("offer %s[%d]: %v", id, i, err)
		}
		next[id] = i + 1
	}

	for pos, slot := range schedule {
		if pos == crashAt {
			// Settle every in-flight update first: the crash drops any
			// acks still on the wire, and un-acked pre-crash updates
			// plus the bounded downtime offers below must together stay
			// inside the source send window or Offer deadlocks.
			for id, a := range agents {
				if err := a.Drain(); err != nil {
					t.Fatalf("drain %s before crash: %v", id, err)
				}
			}
			// Kill the durable shard mid-ingest: close the listener and
			// the server (final checkpoint lands in the WAL dir).
			ts1.Close()
			if err := shard1.Close(); err != nil {
				t.Fatalf("crash close: %v", err)
			}
			down = true
		}
		offer(sources[slot%nSources])
	}

	// Restart the shard from its WAL on the same address and resync.
	shard1 = openDurable()
	shard1.SetShardInfo(1, 0)
	ts1b, err := dsms.NewTCPServerOptions(shard1, addr1, dsms.ServerOptions{})
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr1, err)
	}
	go ts1b.Serve()
	defer ts1b.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = router.ReconnectShard(1); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reconnect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	down = false

	// Finish the workload (including everything the schedule dropped or
	// the downtime window deferred).
	for _, id := range sources {
		for next[id] < steps {
			offer(id)
		}
	}
	for id, a := range agents {
		if err := a.Drain(); err != nil {
			t.Fatalf("drain %s after recovery: %v", id, err)
		}
	}

	qc, err := dsms.DialQuery(router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	ans, err := qc.Ask("grid", steps-1)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, [][]float64{ans}, want, "crash recovery")
}
