package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
	"streamkf/internal/trace"
)

// chainKinds collects the set of kinds present in a spliced chain.
func chainKinds(events []trace.EventView) map[string]bool {
	out := make(map[string]bool)
	for _, e := range events {
		out[e.Kind] = true
	}
	return out
}

// TestClusterTraceE2EChain is the tentpole acceptance test: a traced
// source streams through the router into a durable traced shard, one
// reading violates δ, and the router's /tracez/stream/{id} must splice
// the router's hop events into the shard's trail — one traceID, one
// causal chain from the source's decision through the router's
// fwd_rx/fwd_tx to the shard's apply and WAL append, closed by the
// router's fwd_ack, with monotonic timestamps end to end.
func TestClusterTraceE2EChain(t *testing.T) {
	const n, spikeAt, spike = 120, 100, 500.0
	catalog := testCatalog()
	shardAddrs := make([]string, 2)
	adminAddrs := make([]string, 2)
	for i := range shardAddrs {
		s, err := dsms.Open(catalog, t.TempDir(), dsms.DurabilityOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		s.EnableTracing(trace.Options{})
		shardAddrs[i] = startShard(t, s, i).Addr()
		a, err := dsms.ServeAdmin(s, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		adminAddrs[i] = a.Addr()
	}
	r, err := NewRouter("127.0.0.1:0", shardAddrs, Options{Trace: true, ShardAdmins: adminAddrs})
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve()
	t.Cleanup(func() { r.Close() })
	if err := r.RegisterQuery(stream.Query{ID: "q1", SourceID: "walk", Delta: 1, F: 10, Model: "linear"}); err != nil {
		t.Fatal(err)
	}
	admin, err := ServeAdmin(r, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	agent, err := dsms.DialSourceOptions(r.Addr(), "walk", catalog, dsms.DialOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	// A noiseless ramp the linear model locks onto, with one huge spike:
	// after lock-on readings suppress, the spike must transmit.
	data := gen.Ramp(n, 0, 2, 0, 1)
	data[spikeAt].Values[0] += spike
	spikeSeq := int64(data[spikeAt].Seq)
	for _, rd := range data {
		if _, err := agent.Offer(rd); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.Drain(); err != nil {
		t.Fatal(err)
	}

	// The spliced document: the lookup works by query id too.
	code, _, body := adminGet(t, admin.Addr(), "/tracez/stream/q1")
	if code != http.StatusOK {
		t.Fatalf("/tracez/stream/q1 status %d: %s", code, body)
	}
	var ct ClusterStreamTrace
	if err := json.Unmarshal([]byte(body), &ct); err != nil {
		t.Fatalf("/tracez/stream/q1 is not JSON: %v\n%s", err, body)
	}
	if ct.SourceID != "walk" || !ct.Enabled {
		t.Fatalf("spliced document identity wrong: %+v", ct)
	}
	if ct.ShardTrace == nil {
		t.Fatalf("shard trail missing (error %q); federation did not reach %s", ct.Error, ct.ShardAdmin)
	}
	if len(ct.RouterEvents) == 0 {
		t.Fatal("router recorded no forwarding events for a traced stream")
	}

	// The δ-violating reading's chain, end to end under one traceID.
	var spikeEvents []trace.EventView
	var spikeTID int64
	for _, ev := range ct.Chain {
		if ev.Seq == spikeSeq && ev.Kind == "fwd_rx" {
			spikeTID = ev.TraceID
		}
	}
	if spikeTID == 0 {
		t.Fatalf("no fwd_rx for the δ-violating seq %d in the chain", spikeSeq)
	}
	for _, ev := range ct.Chain {
		if ev.TraceID == spikeTID {
			spikeEvents = append(spikeEvents, ev)
		}
	}
	kinds := chainKinds(spikeEvents)
	for _, want := range []string{"decision", "fwd_rx", "fwd_tx", "wire_rx", "apply", "wal", "fwd_ack"} {
		if !kinds[want] {
			t.Errorf("spike chain missing kind %q (have %v)", want, kinds)
		}
	}
	at := make(map[string]int64, len(spikeEvents))
	for _, ev := range spikeEvents {
		at[ev.Kind] = ev.AtUnixNs
	}
	order := []string{"decision", "fwd_rx", "fwd_tx", "apply", "wal", "fwd_ack"}
	for i := 1; i < len(order); i++ {
		if at[order[i-1]] > at[order[i]] {
			t.Errorf("chain timestamps not monotonic: %s@%d after %s@%d",
				order[i-1], at[order[i-1]], order[i], at[order[i]])
		}
	}
	// The chain itself is sorted by timestamp.
	for i := 1; i < len(spikeEvents); i++ {
		if spikeEvents[i-1].AtUnixNs > spikeEvents[i].AtUnixNs {
			t.Errorf("spliced chain out of order at %d: %+v > %+v", i, spikeEvents[i-1], spikeEvents[i])
		}
	}

	// Hop latency histograms saw the traced forwards.
	_, _, metrics := adminGet(t, admin.Addr(), "/metrics")
	for _, stage := range []string{"router", "shard"} {
		re := regexp.MustCompile(fmt.Sprintf(`dkf_router_hop_latency_seconds_count\{stage="%s"\} (\d+)`, stage))
		m := re.FindStringSubmatch(metrics)
		if m == nil || m[1] == "0" {
			t.Errorf("hop histogram stage=%s unobserved on /metrics (match %v)", stage, m)
		}
	}

	// The router's own /tracez lists the forwarding events.
	code, _, body = adminGet(t, admin.Addr(), "/tracez?source=walk&kind=fwd_tx")
	var tz tracezResponse
	if err := json.Unmarshal([]byte(body), &tz); err != nil || code != http.StatusOK {
		t.Fatalf("/tracez = %d (%v): %s", code, err, body)
	}
	if !tz.Enabled || tz.Count == 0 {
		t.Fatalf("/tracez filtered listing empty: %+v", tz)
	}
}

// TestClusterzVerdictFlip drives one shard of a federated cluster
// through overload and recovery and watches the flip on the router's
// /clusterz: the shard's selfmon verdict must read ok, then degraded
// (with the shed_rate reason federated), then ok again — and the
// rolled-up cluster verdict must follow.
func TestClusterzVerdictFlip(t *testing.T) {
	s := dsms.NewServer(testCatalog())
	e := s.StartEngine(dsms.EngineOptions{Shards: 1, RingSize: 8})
	defer e.Close()
	m, err := s.EnableSelfMon(dsms.SelfMonOptions{
		Every: time.Second, RateWindow: 5 * time.Second, Recover: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := startShard(t, s, 0).Addr()
	sa, err := dsms.ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()

	// A second, untroubled shard: its verdict must stay put while shard
	// 0 flips.
	s2 := dsms.NewServer(testCatalog())
	addr2 := startShard(t, s2, 1).Addr()
	sa2, err := dsms.ServeAdmin(s2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sa2.Close()

	r, err := NewRouter("127.0.0.1:0", []string{addr, addr2}, Options{ShardAdmins: []string{sa.Addr(), sa2.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve()
	t.Cleanup(func() { r.Close() })

	// Synthetic clock, as in the selfmon tests: evenly spaced ticks make
	// the windowed signals deterministic and the test sleep-free.
	now := time.Unix(1_700_000_000, 0)
	tick := func() {
		now = now.Add(time.Second)
		m.Tick(now)
	}
	for i := 0; i < 5; i++ {
		tick()
	}
	if cz := r.Clusterz(); cz.Status != "ok" || cz.Shards[0].Status != "ok" {
		t.Fatalf("pre-overload clusterz = %q (shard 0 %q), want ok", cz.Status, cz.Shards[0].Status)
	}

	// Stall the only shard worker, then slam the ring: TryOffer sheds
	// once the slots fill, driving dkf_engine_ring_dropped_total.
	release := make(chan struct{})
	if !e.RunOnShard(0, func() { <-release }) {
		t.Fatal("RunOnShard refused on a live engine")
	}
	p := e.Producer()
	u := &core.Update{SourceID: "burst", Seq: 1, Time: 1, Values: []float64{1}, Bootstrap: true}
	for i := 0; i < 200; i++ {
		p.TryOffer(0, u)
	}
	close(release)
	tick()

	cz := r.Clusterz()
	if cz.Status != "degraded" || cz.Shards[0].Status != "degraded" {
		t.Fatalf("overloaded clusterz = %q (shard 0 %q), want degraded", cz.Status, cz.Shards[0].Status)
	}
	if cz.Shards[1].Status != "ok" {
		t.Fatalf("untroubled shard 1 flipped too: %+v", cz.Shards[1])
	}
	found := false
	for _, reason := range cz.Shards[0].Reasons {
		if reason.Signal == "shed_rate" {
			found = true
		}
	}
	if !found {
		t.Fatalf("shed_rate reason not federated: %+v", cz.Shards[0].Reasons)
	}

	// The burst ages out of the rate window; the federated verdict
	// recovers with the shard's.
	recovered := false
	for i := 0; i < 50 && !recovered; i++ {
		tick()
		recovered = s.Health().Status == "ok"
	}
	if !recovered {
		t.Fatalf("shard verdict never recovered; health = %+v", s.Health())
	}
	if cz := r.Clusterz(); cz.Status != "ok" || cz.Shards[0].Status != "ok" {
		t.Fatalf("post-recovery clusterz = %q (shard 0 %q), want ok", cz.Status, cz.Shards[0].Status)
	}
}

// TestClusterObservabilityRaceSmoke scrapes /clusterz and the spliced
// /tracez/stream while a traced 2-shard cluster ingests and migrates
// the stream — the observability plane must never race the data path
// (run under -race in CI).
func TestClusterObservabilityRaceSmoke(t *testing.T) {
	catalog := testCatalog()
	shardAddrs := make([]string, 2)
	adminAddrs := make([]string, 2)
	for i := range shardAddrs {
		s := dsms.NewServer(catalog)
		s.EnableTracing(trace.Options{})
		shardAddrs[i] = startShard(t, s, i).Addr()
		a, err := dsms.ServeAdmin(s, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		adminAddrs[i] = a.Addr()
	}
	r, err := NewRouter("127.0.0.1:0", shardAddrs, Options{Trace: true, ShardAdmins: adminAddrs})
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve()
	t.Cleanup(func() { r.Close() })
	// A tiny δ on the constant model keeps every reading transmitting,
	// so trace traffic flows for the whole run.
	if err := r.RegisterQuery(stream.Query{ID: "q1", SourceID: "walk", Delta: 1e-9, Model: "constant"}); err != nil {
		t.Fatal(err)
	}
	admin, err := ServeAdmin(r, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	agent, err := dsms.DialSourceOptions(r.Addr(), "walk", catalog, dsms.DialOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	const steps = 400
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, rd := range gen.Ramp(steps, 0, 1, 0.2, 7) {
			if _, err := agent.Offer(rd); err != nil {
				return
			}
		}
		agent.Drain()
	}()

	var wg sync.WaitGroup
	for _, path := range []string{"/clusterz?format=json", "/tracez?source=walk", "/tracez/stream/walk", "/eventz", "/metrics", "/healthz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				code, _, body := adminGet(t, admin.Addr(), path)
				if code >= http.StatusInternalServerError {
					t.Errorf("GET %s = %d: %.120s", path, code, body)
				}
			}
		}(path)
	}

	// Migrate the live stream back and forth under the scrape load.
	from := r.Ring().Owner("walk")
	for i := 0; i < 2; i++ {
		target := 1 - from
		if err := r.Migrate("walk", target); err != nil {
			t.Fatalf("migrate %d -> %d: %v", from, target, err)
		}
		from = target
	}

	wg.Wait()
	<-done

	// After the dust settles the event log remembers the migrations.
	_, _, body := adminGet(t, admin.Addr(), "/eventz")
	if !strings.Contains(body, EvMigrationComplete) {
		t.Fatalf("/eventz has no %s after two migrations: %.200s", EvMigrationComplete, body)
	}
}
