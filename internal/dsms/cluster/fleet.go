package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"streamkf/internal/dsms"
)

// Federated fleet view: the router polls each shard's admin endpoint
// (/healthz?verbose=1, /metricsz, /streamz) on demand — per /clusterz
// request, no background goroutine, so tests and scrapes see a
// deterministic snapshot — and folds the results into one cluster
// document with a rolled-up verdict. A shard whose admin endpoint is
// unreachable degrades the cluster but does not fail the scrape: the
// router still knows whether the shard's data-plane connection is
// alive, which is the half that matters for ingest.

// adminClient fetches shard admin documents. The timeout bounds a
// /clusterz render when a shard's admin port blackholes.
var adminClient = &http.Client{Timeout: 3 * time.Second}

// fetchJSON GETs http://addr+path and decodes the JSON body into v.
// 503 responses are decoded too: /healthz serves its verdict document
// with that status when unhealthy, and /metricsz uses it when
// self-monitoring is off.
func fetchJSON(addr, path string, v any) error {
	resp, err := adminClient.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("%s%s: %s", addr, path, resp.Status)
	}
	return json.Unmarshal(body, v)
}

// shardAdmin returns the admin address configured for a shard, or "".
func (r *Router) shardAdmin(shard int) string {
	if shard < 0 || shard >= len(r.opts.ShardAdmins) {
		return ""
	}
	return r.opts.ShardAdmins[shard]
}

// metricszDoc mirrors the subset of the shard /metricsz document the
// fleet view consumes (the full shape lives in dsms/statusz.go).
type metricszDoc struct {
	Series []struct {
		Name       string            `json:"name"`
		Labels     map[string]string `json:"labels,omitempty"`
		Value      float64           `json:"value"`
		RatePerSec *float64          `json:"rate_per_sec,omitempty"`
	} `json:"series"`
}

// ShardHealth is one shard's row in the /clusterz document.
type ShardHealth struct {
	Shard     int    `json:"shard"`
	Addr      string `json:"addr"`
	Admin     string `json:"admin,omitempty"`
	Connected bool   `json:"connected"`
	// Status is the shard's selfmon verdict: ok | degraded | unhealthy,
	// or "unreachable" when the admin endpoint could not be polled and
	// "unknown" when no admin endpoint is configured.
	Status        string              `json:"status"`
	UptimeSeconds float64             `json:"uptime_seconds,omitempty"`
	Reasons       []dsms.HealthReason `json:"reasons,omitempty"`

	IngestRatePerSec float64 `json:"ingest_rate_per_sec"`
	ShedRatePerSec   float64 `json:"shed_rate_per_sec"`
	ErrorRatePerSec  float64 `json:"error_rate_per_sec"`
	// WALCheckpointAgeSeconds is -1 when unknown (no admin, no WAL, or
	// no checkpoint yet).
	WALCheckpointAgeSeconds float64 `json:"wal_checkpoint_age_seconds"`

	// Router-side route occupancy for this shard.
	Routes         int   `json:"routes"`
	PendingUpdates int   `json:"pending_updates"`
	ForwardedTotal int64 `json:"forwarded_total"`

	Error string `json:"error,omitempty"`
}

// Clusterz is the cluster fleet document: per-shard health plus the
// rolled-up verdict the router's own /healthz reports.
type Clusterz struct {
	Status          string        `json:"status"`
	Epoch           int64         `json:"epoch"`
	Shards          []ShardHealth `json:"shards"`
	MigrationsTotal int64         `json:"migrations_total"`
	EventsTotal     uint64        `json:"events_total"`
}

// Clusterz assembles the fleet document by polling every shard's admin
// endpoint. Rollup rules, strictest wins: a dead upstream connection
// or an unhealthy shard verdict makes the cluster unhealthy; a
// degraded shard or an unreachable/unconfigured admin endpoint makes
// it degraded; otherwise ok.
func (r *Router) Clusterz() Clusterz {
	// Route occupancy per shard, gathered once.
	r.routeMu.RLock()
	routes := make([]*route, len(r.byIdx))
	copy(routes, r.byIdx)
	r.routeMu.RUnlock()
	type occ struct{ routes, pending int }
	occs := make([]occ, len(r.upstreams))
	for _, rt := range routes {
		rt.pendMu.Lock()
		pend := len(rt.pending)
		rt.pendMu.Unlock()
		rt.mu.Lock()
		shard := rt.shard
		rt.mu.Unlock()
		if shard >= 0 && shard < len(occs) {
			occs[shard].routes++
			occs[shard].pending += pend
		}
	}

	out := Clusterz{Status: "ok", Epoch: r.ring.Epoch()}
	if v, ok := r.tel.reg.Get("dkf_router_migrations_total"); ok {
		out.MigrationsTotal = int64(v)
	}
	_, out.EventsTotal = r.events.Events()

	worst := 0 // 0 ok, 1 degraded, 2 unhealthy
	bump := func(level int) {
		if level > worst {
			worst = level
		}
	}
	for i, up := range r.upstreams {
		up.mu.Lock()
		alive := up.alive
		up.mu.Unlock()
		sh := ShardHealth{
			Shard: i, Addr: up.addr, Admin: r.shardAdmin(i),
			Connected: alive, Status: "unknown",
			WALCheckpointAgeSeconds: -1,
			Routes:                  occs[i].routes,
			PendingUpdates:          occs[i].pending,
			ForwardedTotal:          r.tel.forwarded[i].Value(),
		}
		if !alive {
			bump(2)
		}
		if sh.Admin == "" {
			sh.Error = "no admin endpoint configured"
			bump(1)
			out.Shards = append(out.Shards, sh)
			continue
		}
		var h dsms.HealthStatus
		if err := fetchJSON(sh.Admin, "/healthz?verbose=1", &h); err != nil {
			sh.Status = "unreachable"
			sh.Error = err.Error()
			bump(1)
			out.Shards = append(out.Shards, sh)
			continue
		}
		sh.Status = h.Status
		sh.UptimeSeconds = h.UptimeSeconds
		sh.Reasons = h.Reasons
		switch h.Status {
		case "unhealthy":
			bump(2)
		case "degraded":
			bump(1)
		}
		// Rates are best-effort: /metricsz is 503-with-JSON when the
		// shard runs without self-monitoring, leaving the rates zero.
		var m metricszDoc
		if err := fetchJSON(sh.Admin, "/metricsz", &m); err == nil {
			for _, s := range m.Series {
				if s.RatePerSec == nil {
					continue
				}
				switch s.Name {
				case "dkf_server_updates_total":
					sh.IngestRatePerSec += *s.RatePerSec
				case "dkf_engine_ring_dropped_total":
					sh.ShedRatePerSec += *s.RatePerSec
				case "dkf_wire_errors_total":
					sh.ErrorRatePerSec += *s.RatePerSec
				}
			}
		}
		var z dsms.Streamz
		if err := fetchJSON(sh.Admin, "/streamz", &z); err == nil && z.WAL != nil {
			sh.WALCheckpointAgeSeconds = z.WAL.CheckpointAgeSeconds
		}
		out.Shards = append(out.Shards, sh)
	}
	switch worst {
	case 2:
		out.Status = "unhealthy"
	case 1:
		out.Status = "degraded"
	}
	return out
}

// traceStreamPath builds the shard admin path for one stream's trail.
func traceStreamPath(id string) string {
	return "/tracez/stream/" + url.PathEscape(id)
}
