package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterminism(t *testing.T) {
	a := NewRing(4, 64)
	b := NewRing(4, 64)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("source-%d", i)
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("placement of %s differs between identical rings: %d vs %d", id, a.Owner(id), b.Owner(id))
		}
	}
	if a.Epoch() != 1 {
		t.Fatalf("fresh ring epoch %d, want 1", a.Epoch())
	}
}

func TestRingAddShardMinimalMovement(t *testing.T) {
	r := NewRing(3, 64)
	before := make(map[string]int)
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("s%d", i)
		before[id] = r.Owner(id)
	}
	if err := r.AddShard(3); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for id, old := range before {
		now := r.Owner(id)
		if now != old {
			if now != 3 {
				t.Fatalf("%s moved %d -> %d, but only moves TO the new shard are allowed", id, old, now)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("adding a shard moved nothing — the new shard would stay empty")
	}
	if r.Epoch() != 2 {
		t.Fatalf("epoch %d after one mutation, want 2", r.Epoch())
	}
}

func TestRingRemoveShardSurvivorsKeepOwners(t *testing.T) {
	r := NewRing(4, 64)
	before := make(map[string]int)
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("s%d", i)
		before[id] = r.Owner(id)
	}
	if err := r.RemoveShard(2); err != nil {
		t.Fatal(err)
	}
	for id, old := range before {
		now := r.Owner(id)
		if old != 2 && now != old {
			t.Fatalf("%s owned by surviving shard %d moved to %d on unrelated removal", id, old, now)
		}
		if now == 2 {
			t.Fatalf("%s still placed on removed shard", id)
		}
	}
}

func TestRingPin(t *testing.T) {
	r := NewRing(2, 64)
	id := "pinned-stream"
	home := r.Owner(id)
	other := 1 - home
	r.Pin(id, other)
	if got := r.Owner(id); got != other {
		t.Fatalf("pinned owner %d, want %d", got, other)
	}
	if s, ok := r.Pinned(id); !ok || s != other {
		t.Fatalf("Pinned = %d,%v, want %d,true", s, ok, other)
	}
	// Pinning back to the hash owner removes the override.
	r.Pin(id, home)
	if _, ok := r.Pinned(id); ok {
		t.Fatal("pin to hash owner should clear the override")
	}
	if got := r.Owner(id); got != home {
		t.Fatalf("owner %d after unpin, want %d", got, home)
	}
}

// FuzzRingPlacement checks the ring's three contracts on arbitrary
// shard counts, vnode counts and id material: (1) placement is
// deterministic and in range; (2) load imbalance stays bounded at
// realistic vnode counts; (3) topology changes move only the streams
// they must.
func FuzzRingPlacement(f *testing.F) {
	f.Add(uint8(2), uint8(64), "sensor")
	f.Add(uint8(5), uint8(32), "a")
	f.Add(uint8(1), uint8(4), "xyz")
	f.Add(uint8(9), uint8(48), "stream-id-prefix")
	f.Fuzz(func(t *testing.T, nShards, vnodes uint8, prefix string) {
		ns := int(nShards%16) + 1
		vn := int(vnodes%61) + 4 // 4..64
		r := NewRing(ns, vn)
		r2 := NewRing(ns, vn)

		const ids = 300
		counts := make([]int, ns)
		owners := make(map[string]int, ids)
		for i := 0; i < ids; i++ {
			id := fmt.Sprintf("%s-%d", prefix, i)
			o := r.Owner(id)
			if o < 0 || o >= ns {
				t.Fatalf("owner %d out of range [0,%d)", o, ns)
			}
			if o2 := r2.Owner(id); o2 != o {
				t.Fatalf("identical rings disagree on %q: %d vs %d", id, o, o2)
			}
			counts[o]++
			owners[id] = o
		}
		// Bounded imbalance: with >=32 vnodes per shard, no shard holds
		// more than 3x its fair share of 300 ids.
		if vn >= 32 && ns > 1 {
			mean := float64(ids) / float64(ns)
			for s, c := range counts {
				if float64(c) > 3*mean {
					t.Fatalf("shard %d holds %d of %d ids (mean %.1f, vnodes %d) — imbalance above 3x", s, c, ids, mean, vn)
				}
			}
		}
		// Minimal movement on add: moves only TO the new shard.
		added := ns
		if err := r.AddShard(added); err != nil {
			t.Fatal(err)
		}
		for id, old := range owners {
			now := r.Owner(id)
			if now != old && now != added {
				t.Fatalf("add(%d) moved %q from %d to %d", added, id, old, now)
			}
		}
		// Minimal movement on remove: removing what we added restores
		// the exact original placement.
		if err := r.RemoveShard(added); err != nil {
			t.Fatal(err)
		}
		for id, old := range owners {
			if now := r.Owner(id); now != old {
				t.Fatalf("remove(%d) left %q on %d, originally %d", added, id, now, old)
			}
		}
	})
}
