package cluster

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"streamkf/internal/dsms"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

func testCatalog() *dsms.Catalog { return dsms.DefaultCatalog(1) }

// startShard runs a dsms.Server on loopback and returns its TCP front.
func startShard(t *testing.T, s *dsms.Server, index int) *dsms.TCPServer {
	t.Helper()
	s.SetShardInfo(index, 0)
	ts, err := dsms.NewTCPServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ts.Serve()
	t.Cleanup(func() { ts.Close() })
	return ts
}

// startCluster brings up n shards behind a router.
func startCluster(t *testing.T, n int, opts Options) (*Router, []*dsms.Server) {
	t.Helper()
	servers := make([]*dsms.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		servers[i] = dsms.NewServer(testCatalog())
		addrs[i] = startShard(t, servers[i], i).Addr()
	}
	r, err := NewRouter("127.0.0.1:0", addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve()
	t.Cleanup(func() { r.Close() })
	return r, servers
}

// driveTCP replays per-source readings through TCP agents against addr,
// draining and asking queryID at each checkpoint seq. Both the single
// server and the router present the same protocol, so the identical
// client code drives both sides of every equivalence test.
func driveTCP(t *testing.T, addr, queryID string, data map[string][]stream.Reading, checkpoints []int) [][]float64 {
	t.Helper()
	catalog := testCatalog()
	agents := make(map[string]*dsms.RemoteAgent, len(data))
	for id := range data {
		a, err := dsms.DialSource(addr, id, catalog)
		if err != nil {
			t.Fatalf("dial %s: %v", id, err)
		}
		defer a.Close()
		agents[id] = a
	}
	qc, err := dsms.DialQuery(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	var answers [][]float64
	next := 0
	for _, cp := range checkpoints {
		for ; next <= cp; next++ {
			for id, readings := range data {
				if next < len(readings) {
					if _, err := agents[id].Offer(readings[next]); err != nil {
						t.Fatalf("offer %s[%d]: %v", id, next, err)
					}
				}
			}
		}
		for id, a := range agents {
			if err := a.Drain(); err != nil {
				t.Fatalf("drain %s: %v", id, err)
			}
		}
		ans, err := qc.Ask(queryID, cp)
		if err != nil {
			t.Fatalf("ask @%d: %v", cp, err)
		}
		answers = append(answers, ans)
	}
	return answers
}

func requireBitIdentical(t *testing.T, got, want [][]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers vs %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: answer %d has %d values vs %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("%s: answer %d value %d: cluster %v, single server %v — trajectories diverged",
					label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestClusterAggregateBitIdentical is the tentpole acceptance check: a
// cross-shard aggregate served through a 2-shard cluster must answer
// bit-identically to a single server evaluating the whole aggregate,
// for every aggregate function. The sources, the Δ budget, and the
// query checkpoints are identical on both sides; only the topology
// differs.
func TestClusterAggregateBitIdentical(t *testing.T) {
	const nSources = 6
	sources := make([]string, nSources)
	data := make(map[string][]stream.Reading, nSources)
	for i := range sources {
		sources[i] = fmt.Sprintf("sensor-%d", i)
		data[sources[i]] = gen.Ramp(300, float64(3+i), 1.1+0.3*float64(i), 0.7, int64(41+i))
	}
	checkpoints := []int{99, 299}

	for _, fn := range []dsms.AggFunc{dsms.AggSum, dsms.AggAvg, dsms.AggMin, dsms.AggMax} {
		t.Run(string(fn), func(t *testing.T) {
			agg := dsms.AggregateQuery{
				ID: "load", SourceIDs: sources, Func: fn, Delta: 6, Model: "linear",
			}

			// Single server: the reference trajectory.
			single := dsms.NewServer(testCatalog())
			if err := single.RegisterAggregate(agg); err != nil {
				t.Fatal(err)
			}
			ts, err := dsms.NewTCPServer(single, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go ts.Serve()
			defer ts.Close()
			want := driveTCP(t, ts.Addr(), "load", data, checkpoints)

			// 2-shard cluster behind the router.
			router, shards := startCluster(t, 2, Options{})
			owners := make(map[int]int)
			for _, id := range sources {
				owners[router.Ring().Owner(id)]++
			}
			if len(owners) != 2 {
				t.Fatalf("degenerate split: all sources landed on one shard (%v)", owners)
			}
			if err := router.RegisterAggregate(agg); err != nil {
				t.Fatal(err)
			}
			got := driveTCP(t, router.Addr(), "load", data, checkpoints)
			requireBitIdentical(t, got, want, string(fn))

			// Each shard only ever saw a partial view.
			for i, s := range shards {
				if z := s.Streamz(); z.Cluster == nil || z.Cluster.ShardIndex != i {
					t.Fatalf("shard %d missing cluster streamz block", i)
				} else if z.Cluster.OwnedStreams != owners[i] {
					t.Fatalf("shard %d owns %d streams, want %d", i, z.Cluster.OwnedStreams, owners[i])
				}
			}
		})
	}
}

// TestClusterPlainQueryRouting: a per-stream query registered through
// the router lands on the owning shard and answers identically to a
// single server.
func TestClusterPlainQueryRouting(t *testing.T) {
	data := map[string][]stream.Reading{"solo": gen.Ramp(250, 4, 1.5, 0.6, 7)}
	checkpoints := []int{120, 249}
	q := stream.Query{ID: "q1", SourceID: "solo", Delta: 2, Model: "linear"}

	single := dsms.NewServer(testCatalog())
	if err := single.Register(q); err != nil {
		t.Fatal(err)
	}
	ts, err := dsms.NewTCPServer(single, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ts.Serve()
	defer ts.Close()
	want := driveTCP(t, ts.Addr(), "q1", data, checkpoints)

	router, shards := startCluster(t, 2, Options{})
	if err := router.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	got := driveTCP(t, router.Addr(), "q1", data, checkpoints)
	requireBitIdentical(t, got, want, "plain query")

	owner := router.Ring().Owner("solo")
	if !shards[owner].HasQuery("q1") {
		t.Fatalf("owning shard %d does not hold q1", owner)
	}
	if shards[1-owner].HasQuery("q1") {
		t.Fatalf("non-owning shard %d holds q1", 1-owner)
	}
}

// TestClusterMigration is the live-migration acceptance check: a
// stream moves between shards mid-flight via checkpoint snapshot and
// ResumeSeq cutover, the source notices nothing, and the trajectory
// stays bit-identical to a single server that never migrated anything.
func TestClusterMigration(t *testing.T) {
	const id = "mig-src"
	data := map[string][]stream.Reading{id: gen.Ramp(400, 2, 1.3, 0.8, 19)}
	q := stream.Query{ID: "qm", SourceID: id, Delta: 2, Model: "linear"}

	single := dsms.NewServer(testCatalog())
	if err := single.Register(q); err != nil {
		t.Fatal(err)
	}
	ts, err := dsms.NewTCPServer(single, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ts.Serve()
	defer ts.Close()
	want := driveTCP(t, ts.Addr(), "qm", data, []int{199, 399})

	router, shards := startCluster(t, 2, Options{})
	if err := router.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	home := router.Ring().Owner(id)
	target := 1 - home

	catalog := testCatalog()
	agent, err := dsms.DialSource(router.Addr(), id, catalog)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	qc, err := dsms.DialQuery(router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()

	var got [][]float64
	readings := data[id]
	for i := 0; i <= 199; i++ {
		if _, err := agent.Offer(readings[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.Drain(); err != nil {
		t.Fatal(err)
	}
	ans, err := qc.Ask("qm", 199)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, ans)

	if err := router.Migrate(id, target); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if _, released := shards[home].SourceReleased(id); !released {
		t.Fatal("old shard did not mark the stream released")
	}
	if owner := router.Ring().Owner(id); owner != target {
		t.Fatalf("post-migration owner %d, want %d", owner, target)
	}

	// The same connection keeps streaming; the target resumes the
	// filter pair from the snapshot — no re-bootstrap.
	for i := 200; i <= 399; i++ {
		if _, err := agent.Offer(readings[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.Drain(); err != nil {
		t.Fatal(err)
	}
	ans, err = qc.Ask("qm", 399)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, ans)

	requireBitIdentical(t, got, want, "migration")

	// The forwarded stream really runs on the target now.
	var onTarget bool
	for _, st := range shards[target].Stats() {
		if st.SourceID == id && st.Updates > 0 {
			onTarget = true
		}
	}
	if !onTarget {
		t.Fatal("target shard shows no applied updates for the migrated stream")
	}
}

// TestMigrationRacingForwards hammers Migrate back and forth while the
// source streams at full rate. Suppression decisions are made
// source-side against the mirror filter and the migration transfers
// filter state exactly, so no matter where the cutovers land the final
// trajectory must still match the single server bit-for-bit. Run under
// -race this is also the locking proof for the forward-vs-migrate
// paths.
func TestMigrationRacingForwards(t *testing.T) {
	const id = "race-src"
	data := map[string][]stream.Reading{id: gen.Ramp(1200, 1, 0.9, 1.1, 5)}
	q := stream.Query{ID: "qr", SourceID: id, Delta: 1.5, Model: "linear"}

	single := dsms.NewServer(testCatalog())
	if err := single.Register(q); err != nil {
		t.Fatal(err)
	}
	ts, err := dsms.NewTCPServer(single, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ts.Serve()
	defer ts.Close()
	want := driveTCP(t, ts.Addr(), "qr", data, []int{1199})

	router, _ := startCluster(t, 2, Options{})
	if err := router.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	home := router.Ring().Owner(id)

	agent, err := dsms.DialSource(router.Addr(), id, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, rd := range data[id] {
			if _, err := agent.Offer(rd); err != nil {
				t.Errorf("offer: %v", err)
				return
			}
		}
	}()
	// Bounce the stream between shards while it flows: each Migrate is
	// a snapshot + restore + replay racing the live forward path.
	for i := 0; i < 6; i++ {
		time.Sleep(5 * time.Millisecond)
		target := home
		if i%2 == 0 {
			target = 1 - home
		}
		if err := router.Migrate(id, target); err != nil {
			t.Fatalf("migrate %d: %v", i, err)
		}
	}
	wg.Wait()
	if err := agent.Drain(); err != nil {
		t.Fatal(err)
	}
	qc, err := dsms.DialQuery(router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	ans, err := qc.Ask("qr", 1199)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, [][]float64{ans}, want, "racing migration")
}

// TestRouterUDPForward: the connectionless transport works through the
// router — hello gets an install datagram back, updates are forwarded
// to the owning shard over TCP, and the shard's trajectory matches the
// data.
func TestRouterUDPForward(t *testing.T) {
	const id = "udp-src"
	q := stream.Query{ID: "qu", SourceID: id, Delta: 2, Model: "linear"}
	router, shards := startCluster(t, 2, Options{})
	if err := router.RegisterQuery(q); err != nil {
		t.Fatal(err)
	}
	go router.ServeUDP("127.0.0.1:0")
	deadline := time.Now().Add(2 * time.Second)
	for router.UDPAddr() == "" {
		if time.Now().After(deadline) {
			t.Fatal("udp front did not come up")
		}
		time.Sleep(time.Millisecond)
	}

	agent, err := dsms.DialSourceUDP(router.UDPAddr(), id, testCatalog(), dsms.UDPDialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	readings := gen.Ramp(120, 3, 1.2, 0.5, 11)
	for _, rd := range readings {
		if _, err := agent.Offer(rd); err != nil {
			t.Fatal(err)
		}
	}
	owner := router.Ring().Owner(id)
	deadline = time.Now().Add(5 * time.Second)
	for {
		var applied int64
		for _, st := range shards[owner].Stats() {
			if st.SourceID == id {
				applied = int64(st.Updates)
			}
		}
		if applied > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("owning shard never applied a UDP-forwarded update")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
