package cluster

import (
	"fmt"
	"sort"

	"streamkf/internal/dsms"
	"streamkf/internal/trace"
)

// Distributed /tracez: the router keeps its own per-route flight
// recorders (fwd_rx/fwd_tx/fwd_ack), and TraceStream fans the lookup
// out to the owning shard's admin endpoint, splicing both trails into
// one causal chain keyed by the traceID the source minted. Because
// hop-capable peers carry the source's decision timestamp on the wire
// (see wire/hoptrace.go), the spliced chain is time-ordered end to
// end: decision → fwd_rx → fwd_tx → wire_rx → apply → wal → fwd_ack.

// ClusterStreamTrace is the router's /tracez/stream/{id} document.
type ClusterStreamTrace struct {
	SourceID   string `json:"source_id"`
	Shard      int    `json:"shard"`
	ShardAdmin string `json:"shard_admin,omitempty"`
	Enabled    bool   `json:"enabled"`
	// RouterEvents is the router's own trail for the route, oldest
	// first; ShardTrace is the owning shard's document (nil when the
	// shard admin endpoint is unreachable or unconfigured — see Error).
	RouterEvents []trace.EventView `json:"router_events"`
	ShardTrace   *dsms.StreamTrace `json:"shard_trace,omitempty"`
	// Chain merges both trails, deduplicated by (trace_id, seq, kind)
	// and ordered by timestamp (causal stage rank breaks ties).
	Chain []trace.EventView `json:"chain"`
	Error string            `json:"error,omitempty"`
}

// TraceEnabled reports whether the router records forwarding events.
func (r *Router) TraceEnabled() bool { return r.opts.Trace }

// chainRank orders a reading's lifecycle stages causally, for breaking
// timestamp ties when splicing trails recorded on different nodes.
func chainRank(kind string) int {
	switch kind {
	case "smooth":
		return 1
	case "predict":
		return 2
	case "decision":
		return 3
	case "wire_tx":
		return 4
	case "fwd_rx":
		return 5
	case "fwd_tx":
		return 6
	case "wire_rx":
		return 7
	case "apply":
		return 8
	case "wal":
		return 9
	case "fwd_ack":
		return 10
	default: // answer and anything future
		return 11
	}
}

// TraceStream returns the spliced cross-node trail for a source id or
// query id. The shard half degrades gracefully: with no reachable
// shard admin endpoint the document still carries the router's own
// events and names the problem in Error.
func (r *Router) TraceStream(id string) (ClusterStreamTrace, error) {
	sourceID := id
	r.regMu.Lock()
	if q, ok := r.queries[id]; ok {
		sourceID = q.SourceID
	}
	r.regMu.Unlock()

	r.routeMu.RLock()
	rt := r.routes[sourceID]
	r.routeMu.RUnlock()
	if rt == nil {
		return ClusterStreamTrace{}, fmt.Errorf("cluster: unknown stream or query %s", id)
	}
	rt.mu.Lock()
	shard := rt.shard
	rt.mu.Unlock()

	out := ClusterStreamTrace{
		SourceID:   sourceID,
		Shard:      shard,
		ShardAdmin: r.shardAdmin(shard),
		Enabled:    rt.rec != nil,
	}
	if rt.rec != nil {
		evs := rt.rec.Events()
		out.RouterEvents = make([]trace.EventView, len(evs))
		for i := range evs {
			out.RouterEvents[i] = evs[i].View()
		}
	}
	if out.ShardAdmin == "" {
		out.Error = "no shard admin endpoint configured"
	} else {
		var st dsms.StreamTrace
		if err := fetchJSON(out.ShardAdmin, traceStreamPath(sourceID), &st); err != nil {
			out.Error = err.Error()
		} else {
			out.ShardTrace = &st
		}
	}

	type key struct {
		tid, seq int64
		kind     string
	}
	seen := make(map[key]bool)
	add := func(evs []trace.EventView) {
		for _, ev := range evs {
			k := key{ev.TraceID, ev.Seq, ev.Kind}
			if seen[k] {
				continue
			}
			seen[k] = true
			out.Chain = append(out.Chain, ev)
		}
	}
	add(out.RouterEvents)
	if out.ShardTrace != nil {
		add(out.ShardTrace.Events)
	}
	sort.SliceStable(out.Chain, func(i, j int) bool {
		a, b := out.Chain[i], out.Chain[j]
		if a.AtUnixNs != b.AtUnixNs {
			return a.AtUnixNs < b.AtUnixNs
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return chainRank(a.Kind) < chainRank(b.Kind)
	})
	return out, nil
}

// TraceRecent returns up to limit recent forwarding events across all
// routes, newest first — the router's /tracez listing. source narrows
// to one stream; a nonzero kind keeps only matching events.
func (r *Router) TraceRecent(limit int, source string, kind trace.Kind, dec trace.Decision) []dsms.TraceEntry {
	if limit <= 0 {
		limit = 100
	}
	r.routeMu.RLock()
	routes := make([]*route, len(r.byIdx))
	copy(routes, r.byIdx)
	r.routeMu.RUnlock()
	var out []dsms.TraceEntry
	for _, rt := range routes {
		if rt.rec == nil || (source != "" && rt.sourceID != source) {
			continue
		}
		for _, ev := range rt.rec.Events() {
			if kind != 0 && ev.Kind != kind {
				continue
			}
			if dec != trace.DecisionNone && ev.Dec != dec {
				continue
			}
			out = append(out, dsms.TraceEntry{SourceID: rt.sourceID, EventView: ev.View()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AtUnixNs > out[j].AtUnixNs })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
