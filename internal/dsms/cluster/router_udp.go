package cluster

import (
	"fmt"
	"net"

	"streamkf/internal/dsms/wire"
)

// UDP front end. Sources using the connectionless transport send the
// same datagrams they would send a shard directly — preamble plus
// frames — and the router forwards each update to its owning shard over
// the pooled TCP upstream, preserving the transport contract: no acks,
// no connection state, dedup-by-seq at the shard. A hello datagram gets
// an install datagram back, so the handshake works too. Routes created
// here have no downstream conn (down == nil): shard ForwardAcks still
// clear the pending window, there is just nobody to relay them to.

// ServeUDP binds a datagram socket and forwards until Close. Blocks.
func (r *Router) ServeUDP(addr string) error {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return fmt.Errorf("cluster: udp listen: %w", err)
	}
	r.connMu.Lock()
	if r.closing {
		r.connMu.Unlock()
		pc.Close()
		return nil
	}
	r.udp = pc
	r.connMu.Unlock()

	buf := make([]byte, 64<<10)
	var reply []byte
	touched := make([]bool, len(r.upstreams))
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			r.connMu.Lock()
			closing := r.closing
			r.connMu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		_, frames, err := wire.CheckPreamble(buf[:n])
		if err != nil {
			continue // not ours; drop like the shard server does
		}
		for i := range touched {
			touched[i] = false
		}
		for len(frames) > 0 {
			var tag wire.Tag
			var p []byte
			tag, p, frames, err = wire.NextFrame(frames, r.maxFrame)
			if err != nil {
				break
			}
			switch tag {
			case wire.TagUpdate:
				c := wire.NewCursor(p)
				idb := c.Take(int(c.U16()))
				seq := c.I64()
				if !c.OK() {
					continue
				}
				rt := r.routeFor(idb)
				shard := r.forward(rt, p, nil, seq, 0, false)
				if shard >= 0 && shard < len(touched) {
					touched[shard] = true
				}

			case wire.TagHello:
				id, err := wire.DecodeHello(p)
				if err != nil {
					continue
				}
				rt := r.routeFor([]byte(id))
				inst, err := r.helloRoute(rt)
				reply = wire.AppendPreamble(reply[:0], wire.Version, 0)
				if err != nil {
					reply, _ = wire.AppendErrorFrame(reply, err.Error())
				} else {
					r.tel.helloTotal.Inc()
					reply, _ = wire.AppendInstallFrame(reply, inst)
				}
				_, _ = pc.WriteTo(reply, from)
			}
		}
		// A datagram is a natural burst boundary: flush every shard the
		// datagram's updates touched.
		for i, t := range touched {
			if t {
				r.flushShard(i)
			}
		}
	}
}

// flushShard pushes the shard's buffered forwards to the kernel.
func (r *Router) flushShard(shard int) {
	up := r.upstreams[shard]
	up.mu.Lock()
	if up.err == nil {
		if err := up.w.Flush(); err != nil {
			up.err = err
			up.mu.Unlock()
			up.fail(err)
			return
		}
	}
	up.mu.Unlock()
}

// UDPAddr returns the router's bound UDP address, if ServeUDP is up.
func (r *Router) UDPAddr() string {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.udp == nil {
		return ""
	}
	return r.udp.LocalAddr().String()
}
