package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"streamkf/internal/dsms"
)

// adminGet fetches a path from an admin server without connection
// reuse, so goroutine-leak checks see a quiet state after Close.
func adminGet(t *testing.T, addr, path string) (int, http.Header, string) {
	t.Helper()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 30 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// startClusterAdmins brings up n shards with their own admin servers
// behind a router that knows the admin addresses — the full federated
// topology every observability test needs.
func startClusterAdmins(t *testing.T, n int, opts Options) (*Router, []*dsms.Server) {
	t.Helper()
	servers := make([]*dsms.Server, n)
	addrs := make([]string, n)
	admins := make([]string, n)
	for i := 0; i < n; i++ {
		servers[i] = dsms.NewServer(testCatalog())
		addrs[i] = startShard(t, servers[i], i).Addr()
		a, err := dsms.ServeAdmin(servers[i], "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		admins[i] = a.Addr()
	}
	opts.ShardAdmins = admins
	r, err := NewRouter("127.0.0.1:0", addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve()
	t.Cleanup(func() { r.Close() })
	return r, servers
}

// TestRouterAdminEndpoints is the router admin golden scrape: every
// endpoint answers, /metrics carries the expected metric families
// (build identity, per-shard forwards, hop histograms, topology event
// counters), and every response forbids caching.
func TestRouterAdminEndpoints(t *testing.T) {
	r, _ := startClusterAdmins(t, 2, Options{})
	admin, err := ServeAdmin(r, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	code, hdr, body := adminGet(t, admin.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if got := hdr.Get("Cache-Control"); got != "no-store" {
		t.Fatalf("/metrics Cache-Control = %q, want no-store", got)
	}
	for _, want := range []string{
		`dkf_build_info{version=`,
		"# TYPE dkf_uptime_seconds gauge",
		`dkf_router_forwarded_total{shard="0"}`,
		`dkf_router_forwarded_total{shard="1"}`,
		"# TYPE dkf_router_forward_latency_nanos histogram",
		"# TYPE dkf_router_hop_latency_seconds histogram",
		`dkf_router_hop_latency_seconds_count{stage="router"}`,
		`dkf_router_hop_latency_seconds_count{stage="shard"}`,
		"dkf_router_upstream_conns 2",
		`dkf_router_topology_events_total{kind="shard_connect"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, _, body = adminGet(t, admin.Addr(), "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, _, body = adminGet(t, admin.Addr(), "/clusterz?format=json")
	if code != http.StatusOK {
		t.Fatalf("/clusterz status %d", code)
	}
	var cz Clusterz
	if err := json.Unmarshal([]byte(body), &cz); err != nil {
		t.Fatalf("/clusterz is not a JSON Clusterz document: %v\n%s", err, body)
	}
	if cz.Status != "ok" || len(cz.Shards) != 2 {
		t.Fatalf("/clusterz = %+v, want ok with 2 shards", cz)
	}
	for _, sh := range cz.Shards {
		if !sh.Connected || sh.Status != "ok" {
			t.Fatalf("shard %d not federated: %+v", sh.Shard, sh)
		}
	}

	code, _, body = adminGet(t, admin.Addr(), "/clusterz")
	if code != http.StatusOK || !strings.Contains(body, "DKF cluster fleet") {
		t.Fatalf("/clusterz HTML = %d %.80q", code, body)
	}
	code, _, body = adminGet(t, admin.Addr(), "/statusz")
	if code != http.StatusOK || !strings.Contains(body, "DKF router status") {
		t.Fatalf("/statusz = %d %.80q", code, body)
	}

	code, _, body = adminGet(t, admin.Addr(), "/eventz")
	if code != http.StatusOK {
		t.Fatalf("/eventz status %d", code)
	}
	var ez eventzResponse
	if err := json.Unmarshal([]byte(body), &ez); err != nil {
		t.Fatalf("/eventz is not JSON: %v\n%s", err, body)
	}
	if ez.Total < 2 || ez.Count != len(ez.Events) {
		t.Fatalf("/eventz accounting wrong after 2 shard connects: %+v", ez)
	}
	if ez.Events[0].Kind != EvShardConnect || ez.Events[0].At == 0 {
		t.Fatalf("/eventz newest event not a stamped shard_connect: %+v", ez.Events[0])
	}
	code, _, body = adminGet(t, admin.Addr(), "/eventz?limit=1")
	if err := json.Unmarshal([]byte(body), &ez); err != nil || code != http.StatusOK || ez.Count != 1 {
		t.Fatalf("/eventz?limit=1 = %d %+v (%v)", code, ez, err)
	}
	if code, _, _ = adminGet(t, admin.Addr(), "/eventz?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/eventz?limit=bogus status %d, want 400", code)
	}

	// /tracez answers (empty) even with tracing off, so dashboards can
	// always probe it.
	code, _, body = adminGet(t, admin.Addr(), "/tracez")
	if code != http.StatusOK {
		t.Fatalf("/tracez status %d", code)
	}
	var tz tracezResponse
	if err := json.Unmarshal([]byte(body), &tz); err != nil {
		t.Fatalf("/tracez is not JSON: %v\n%s", err, body)
	}
	if tz.Enabled || tz.Count != 0 {
		t.Fatalf("/tracez with tracing off = %+v, want disabled and empty", tz)
	}
	if code, _, _ = adminGet(t, admin.Addr(), "/tracez?kind=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/tracez?kind=bogus status %d, want 400", code)
	}
	if code, _, _ = adminGet(t, admin.Addr(), "/tracez/stream/nope"); code != http.StatusNotFound {
		t.Fatalf("/tracez/stream/nope status %d, want 404", code)
	}
	if code, _, _ = adminGet(t, admin.Addr(), "/tracez/stream/"); code != http.StatusBadRequest {
		t.Fatalf("/tracez/stream/ status %d, want 400", code)
	}
}

// TestClusterzAdminDegraded covers the federation failure modes: no
// admin endpoint configured and an unreachable one both degrade the
// cluster verdict without failing the scrape.
func TestClusterzAdminDegraded(t *testing.T) {
	r, _ := startCluster(t, 2, Options{})
	cz := r.Clusterz()
	if cz.Status != "degraded" {
		t.Fatalf("unconfigured admins: cluster status %q, want degraded", cz.Status)
	}
	for _, sh := range cz.Shards {
		if sh.Status != "unknown" || sh.Error == "" {
			t.Fatalf("shard %d without admin: %+v, want unknown with error", sh.Shard, sh)
		}
	}

	// Port 1 on loopback refuses immediately: the poll fails fast and
	// the shard reports unreachable.
	r2, _ := startCluster(t, 1, Options{ShardAdmins: []string{"127.0.0.1:1"}})
	cz = r2.Clusterz()
	if cz.Status != "degraded" || cz.Shards[0].Status != "unreachable" {
		t.Fatalf("unreachable admin: %+v, want degraded/unreachable", cz)
	}
}
