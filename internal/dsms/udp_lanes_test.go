package dsms

import (
	"bytes"
	"fmt"
	"math"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/gen"
	"streamkf/internal/netsim"
	"streamkf/internal/stream"
)

// laneQuery is the i-th source's registration for the multi-lane tests.
func laneQuery(i int) stream.Query {
	return stream.Query{ID: fmt.Sprintf("q-%d", i), SourceID: fmt.Sprintf("src-%d", i), Delta: 0.5, Model: "linear"}
}

func laneData(i int) []stream.Reading {
	return gen.Ramp(240, float64(i), 1.5, 0.3, int64(17+i))
}

// newLaneServer builds a server with nSrc sources registered and a
// multi-lane UDPServer bound to loopback.
func newLaneServer(t testing.TB, nSrc, lanes, rxBatch int) (*Server, *UDPServer) {
	t.Helper()
	s := NewServer(testCatalog())
	for i := 0; i < nSrc; i++ {
		if err := s.Register(laneQuery(i)); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := NewUDPServer(s, "127.0.0.1:0", UDPServerOptions{
		Lanes:   lanes,
		RxBatch: rxBatch,
		Engine:  EngineOptions{Shards: 2, RingSize: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ts.Close()
		s.Engine().Close()
	})
	if got := ts.Lanes(); got != lanes {
		t.Fatalf("server runs %d lanes, want %d", got, lanes)
	}
	return s, ts
}

// TestUDPMultiLaneLossySemantics is the multi-lane transport-equivalence
// gate: sources are assigned sticky to lanes (per-source datagram order
// preserved, as one socket flow would be), every lane misbehaves per its
// own netsim schedule, and all lanes parse concurrently. The state each
// stream reaches must be bit-identical to a single-lane server fed that
// stream's surviving subsequence in order — lanes add concurrency, never
// new semantics. Runs under -race in CI for the lane-concurrency claim.
func TestUDPMultiLaneLossySemantics(t *testing.T) {
	const nSrc, lanes = 6, 3
	links := []netsim.Link{
		{},
		{DupEvery: 3},
		{SwapEvery: 4},
		{DropEvery: 5},
		{DropEvery: 7, DupEvery: 3, SwapEvery: 5},
		{DupEvery: 2},
	}

	s, ts := newLaneServer(t, nSrc, lanes, 8)
	ups := make([][]core.Update, nSrc)
	want := make([][]core.Update, nSrc)
	wantDedup := 0
	// Pre-encode every source's datagrams in arrival order so the lane
	// goroutines do nothing but deliver.
	dgs := make([][][]byte, nSrc)
	for i := 0; i < nSrc; i++ {
		ups[i] = makeUpdates(t, laneQuery(i), laneData(i))
		order := links[i].Schedule(len(ups[i]))
		var dedup, preBoot int
		want[i], dedup, preBoot = surviving(ups[i], order)
		if preBoot != 0 || len(want[i]) == 0 || !want[i][0].Bootstrap {
			t.Fatalf("src %d: schedule delayed the bootstrap", i)
		}
		wantDedup += dedup
		for _, idx := range order {
			dgs[i] = append(dgs[i], updateDatagram(t, &ups[i][idx]))
		}
	}

	// Sticky assignment: source i always arrives on lane i%lanes. Each
	// lane interleaves its sources round-robin — cross-source order is
	// arbitrary, per-source order is the schedule's.
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			ln := ts.lanes[l]
			for pos := 0; ; pos++ {
				sent := false
				for i := l; i < nSrc; i += lanes {
					if pos < len(dgs[i]) {
						ln.processDatagram(dgs[i][pos], netip.AddrPort{})
						sent = true
					}
				}
				if !sent {
					return
				}
			}
		}(l)
	}
	wg.Wait()
	ts.eng.Quiesce()
	for _, sh := range ts.eng.Stats() {
		if sh.Dropped != 0 {
			t.Fatalf("engine shed %d updates; ring sized too small for the test", sh.Dropped)
		}
	}

	for i := 0; i < nSrc; i++ {
		q := laneQuery(i)
		ref := refServer(t, q, want[i])
		snap := nodeSnapshot(t, s, q.SourceID)
		assertSameState(t, snap, nodeSnapshot(t, ref, q.SourceID))
		assertFiniteState(t, snap)
	}
	if got := engineDedupCount(s); got != wantDedup {
		t.Fatalf("dedup counter = %d, schedules imply %d", got, wantDedup)
	}
}

// TestUDPLaneRxAllocFree gates a non-primary lane's steady-state receive
// path — per-batch histogram observe, preamble check, frame walk, update
// decode, per-lane intern, ring handoff — at zero allocations per
// datagram. This is the per-datagram work the lane loop repeats between
// receive syscalls; the syscall half is covered by the end-to-end lane
// tests.
func TestUDPLaneRxAllocFree(t *testing.T) {
	s, ts := newLaneServer(t, 1, 2, 8)
	_ = s
	ln := ts.lanes[1]

	boot := core.Update{SourceID: laneQuery(0).SourceID, Seq: 0, Time: 0, Values: []float64{1}, Bootstrap: true}
	dg := updateDatagram(t, &boot)
	ln.processDatagram(dg, netip.AddrPort{})
	ts.eng.Quiesce()

	// Replaying the bootstrap's seq exercises the full rx path into the
	// shard's dedup drop. Warm several ring wraps first: each slot's
	// value buffer allocates once on first use.
	for wrap := 0; wrap < 4; wrap++ {
		for i := 0; i < 2048; i++ {
			ln.processDatagram(dg, netip.AddrPort{})
		}
		ts.eng.Quiesce()
	}
	n := testing.AllocsPerRun(200, func() {
		ln.lane.batch.Observe(1)
		ln.processDatagram(dg, netip.AddrPort{})
	})
	ts.eng.Quiesce()
	if n != 0 {
		t.Fatalf("lane rx path allocates %v/datagram, want 0", n)
	}
}

// TestStepAllShardedEquivalence pins the tentpole's bit-identity claim
// for batch advances: AdvanceAll on an engine-attached server (each
// stream advanced on its owning shard worker) must leave every filter
// bit-identical to the bounded worker-pool StepAll on an engine-less
// server fed the same updates.
func TestStepAllShardedEquivalence(t *testing.T) {
	const nSrc = 5
	ups := make([][]core.Update, nSrc)
	for i := 0; i < nSrc; i++ {
		ups[i] = makeUpdates(t, laneQuery(i), laneData(i))
	}
	build := func(withEngine bool) *Server {
		s := NewServer(testCatalog())
		for i := 0; i < nSrc; i++ {
			if err := s.Register(laneQuery(i)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.InstallFor(laneQuery(i).SourceID); err != nil {
				t.Fatal(err)
			}
		}
		if withEngine {
			s.StartEngine(EngineOptions{Shards: 2})
		}
		for i := 0; i < nSrc; i++ {
			for k := range ups[i] {
				if err := s.HandleUpdate(ups[i][k]); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s
	}
	sharded := build(true)
	defer sharded.Engine().Close()
	pooled := build(false)

	target := 0
	for i := 0; i < nSrc; i++ {
		if last := ups[i][len(ups[i])-1].Seq; last > target {
			target = last
		}
	}
	target += 50

	na := sharded.AdvanceAll(target)
	nb := pooled.AdvanceAll(target)
	if na != nSrc || nb != nSrc {
		t.Fatalf("advanced %d (sharded) / %d (pooled) streams, want %d", na, nb, nSrc)
	}
	for i := 0; i < nSrc; i++ {
		id := laneQuery(i).SourceID
		assertSameState(t, nodeSnapshot(t, sharded, id), nodeSnapshot(t, pooled, id))
	}
	// Re-advancing to the same seq is a no-op on both paths.
	if n := sharded.AdvanceAll(target); n != 0 {
		t.Fatalf("second sharded AdvanceAll advanced %d streams, want 0", n)
	}
	if n := pooled.AdvanceAll(target); n != 0 {
		t.Fatalf("second pooled AdvanceAll advanced %d streams, want 0", n)
	}
}

// TestUDPLanesConcurrentAdvance exercises the whole tentpole together on
// real sockets: multi-lane batched receive (recvmmsg where available), a
// sendmmsg-batched UDPBatcher feeding many sources, and shard-aware
// AdvanceAll ticking concurrently with ingest. Run under -race in CI,
// this is the lanes-vs-StepAll interleaving gate; the assertions pin
// that everything sent is applied and no filter corrupts.
func TestUDPLanesConcurrentAdvance(t *testing.T) {
	const nSrc, perSrc = 4, 200
	s, ts := newLaneServer(t, nSrc, 2, 8)
	go ts.Serve()

	b, err := DialUDPBatcherOpts(ts.Addr().String(), UDPBatcherOptions{FlushBytes: 200, SendBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	stop := make(chan struct{})
	var adv sync.WaitGroup
	adv.Add(1)
	go func() {
		defer adv.Done()
		seq := 0
		for {
			select {
			case <-stop:
				return
			default:
				s.AdvanceAll(seq)
				seq += 3
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	eng := s.Engine()
	sent := 0
	for seq := 0; seq < perSrc; seq++ {
		for i := 0; i < nSrc; i++ {
			u := core.Update{
				SourceID:  laneQuery(i).SourceID,
				Seq:       seq,
				Time:      float64(seq),
				Values:    []float64{float64(i) + 1.5*float64(seq)},
				Bootstrap: seq == 0,
			}
			if err := b.Send(u); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		// Bound sent-minus-applied so the socket buffer and rings never
		// overflow into loss on a slow machine.
		for eng.Applied()+1024 < uint64(sent) {
			runtime.Gosched()
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for eng.Applied() < uint64(sent) {
		if time.Now().After(deadline) {
			t.Fatalf("engine applied %d of %d sent updates", eng.Applied(), sent)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	adv.Wait()

	for i := 0; i < nSrc; i++ {
		snap := nodeSnapshot(t, s, laneQuery(i).SourceID)
		assertFiniteState(t, snap)
		if snap.Seq < perSrc-1 {
			t.Fatalf("src %d stopped at seq %d, want >= %d", i, snap.Seq, perSrc-1)
		}
	}

	// Scrape surfaces: the lane counters and batch histogram must be
	// visible in both /streamz and the Prometheus exposition.
	z := s.Streamz()
	if z.Engine == nil || len(z.Engine.Lanes) != 2 {
		t.Fatalf("streamz lanes block missing or wrong size: %+v", z.Engine)
	}
	var laneRxTotal, batches int64
	for _, l := range z.Engine.Lanes {
		laneRxTotal += l.DatagramsRx
		batches += l.Batches
		if l.Batches > 0 && l.AvgBatch < 1 {
			t.Fatalf("lane %d: avg batch %v < 1 with %d batches", l.Lane, l.AvgBatch, l.Batches)
		}
	}
	if laneRxTotal == 0 || batches == 0 {
		t.Fatalf("lane counters flat after e2e run: rx %d, batches %d", laneRxTotal, batches)
	}
	if laneRxTotal != z.Engine.DatagramsRx {
		t.Fatalf("lane rx sums to %d, engine datagrams_rx %d", laneRxTotal, z.Engine.DatagramsRx)
	}
	var buf bytes.Buffer
	s.Telemetry().WritePrometheus(&buf)
	for _, want := range []string{"dkf_udp_lane_datagrams_rx_total", "dkf_udp_lane_batch_size", `lane="0"`, `lane="1"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Prometheus exposition missing %s", want)
		}
	}
}

// TestUDPBatcherSendBatchOne pins the compatibility shape: SendBatch 1
// transmits every sealed datagram immediately (the pre-batching
// behavior), and a tiny FlushBytes produces one update per datagram.
func TestUDPBatcherSendBatchOne(t *testing.T) {
	q := udpQuery()
	s, ts := newUDPPair(t, q)
	go ts.Serve()

	b, err := DialUDPBatcherOpts(ts.Addr().String(), UDPBatcherOptions{FlushBytes: 1, SendBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := s.InstallFor(q.SourceID); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for seq := 0; seq < n; seq++ {
		u := core.Update{SourceID: q.SourceID, Seq: seq, Time: float64(seq), Values: []float64{float64(seq)}, Bootstrap: seq == 0}
		if err := b.Send(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	eng := s.Engine()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Applied() < n {
		if time.Now().After(deadline) {
			t.Fatalf("engine applied %d of %d", eng.Applied(), n)
		}
		time.Sleep(time.Millisecond)
	}
	// One update per datagram: the datagram counter must equal the
	// update count (plus nothing else on this socket).
	if z := s.Streamz(); z.Engine.DatagramsRx != n {
		t.Fatalf("datagrams_rx = %d, want %d (one update per datagram)", z.Engine.DatagramsRx, n)
	}
	snap := nodeSnapshot(t, s, q.SourceID)
	if snap.Seq != n-1 {
		t.Fatalf("final seq %d, want %d", snap.Seq, n-1)
	}
	if math.IsNaN(snap.X[0]) {
		t.Fatal("state corrupted")
	}
}
