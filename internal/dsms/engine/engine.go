// Package engine implements the shard-per-core ingest engine: every
// stream is pinned to one of N shards by a hash of its source id, and
// each shard owns a single worker goroutine that applies updates for
// its streams in batch. Network readers (or in-process producers) hand
// decoded updates to the owning shard over lock-free single-producer /
// single-consumer ring buffers, so the steady-state ingest path crosses
// no mutex between the socket and the filter apply.
//
// The decomposition is sound for the DKF workload because streams are
// independent filter pairs — there is no cross-stream state on the
// apply path (PAPERS.md's distributed Kalman-filtering decomposition is
// the same observation made formally). Shard ownership gives each
// stream a single writer, so per-update locking degenerates to one
// uncontended acquisition per *batch run*, and the write-ahead log can
// group-commit a whole batch.
//
// The package is deliberately ignorant of the DSMS: it moves
// core.Update values and calls a Sink. internal/dsms wires it to the
// server (dedup, apply, WAL batching, telemetry) and the UDP transport.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"streamkf/internal/core"
)

// Sink consumes drained batches. ApplyBatch is invoked only from the
// owning shard's worker goroutine — implementations need no locking
// against other shards, only against cross-shard readers of their own
// state. The batch slice and each update's Values are reused after the
// call returns; the sink must not retain them.
type Sink interface {
	ApplyBatch(shard int, batch []core.Update)
}

// Options tunes an Engine.
type Options struct {
	// Shards is the number of shard workers. <= 0 uses
	// runtime.GOMAXPROCS(0) — the same default StepAll's worker pool
	// uses, so the two batch paths share one parallelism knob.
	Shards int
	// RingSize is the per-(producer,shard) ring capacity, rounded up
	// to a power of two. <= 0 selects 1024.
	RingSize int
	// BatchSize caps how many updates one ApplyBatch call carries.
	// <= 0 selects 256.
	BatchSize int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.RingSize <= 0 {
		o.RingSize = 1024
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	n := 1
	for n < o.RingSize {
		n <<= 1
	}
	o.RingSize = n
	return o
}

// slot is one ring entry. It owns its Values storage, so republishing
// into a previously used slot copies floats into retained capacity and
// allocates nothing.
type slot struct {
	sourceID  string
	seq       int64
	time      float64
	bootstrap bool
	values    []float64
}

// ring is a lock-free SPSC queue. head (consumer) and tail (producer)
// are monotonically increasing positions masked into the slot array;
// each sits on its own cache line so the producer's stores do not
// bounce the consumer's line.
type ring struct {
	_    [64]byte
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
	_    [56]byte

	mask  uint64
	slots []slot
	sh    *shard
}

func newRing(size int, sh *shard) *ring {
	return &ring{mask: uint64(size - 1), slots: make([]slot, size), sh: sh}
}

// shard is one worker's world: the rings feeding it, its wake-up
// plumbing, and its occupancy counters.
type shard struct {
	id    int
	rings atomic.Pointer[[]*ring]

	// sleeping is 1 while the worker is parked (or about to park) on
	// wake. A producer that transitions it 1→0 owns the wake-up.
	sleeping atomic.Uint32
	wake     chan struct{}

	// offered counts updates published to this shard's rings (counted
	// before the publishing store, so offered >= visible items) and
	// applied counts updates handed to the sink. offered == applied
	// with quiescent producers means the shard is drained.
	offered atomic.Uint64
	applied atomic.Uint64
	// dropped counts TryOffer rejections (ring full — datagram
	// semantics shed load instead of blocking the reader).
	dropped atomic.Uint64
	// depthHWM is the high-water mark of any feeding ring's occupancy.
	depthHWM atomic.Uint64

	// tasks are one-shot closures RunOnShard hands the worker — the
	// shard-affine batch work (StepAll advances) that must not contend
	// with the worker's own applies. taskCount shadows len(tasks) so the
	// hot loop's "anything to do?" check stays an atomic load.
	taskMu    sync.Mutex
	tasks     []func()
	taskCount atomic.Int32
}

func (sh *shard) ringList() []*ring {
	if p := sh.rings.Load(); p != nil {
		return *p
	}
	return nil
}

// pending reports how many published updates await draining.
func (sh *shard) pending() uint64 {
	var n uint64
	for _, r := range sh.ringList() {
		n += r.tail.Load() - r.head.Load()
	}
	return n
}

// maybeWake hands the parked worker its wake-up token. Only the
// producer that wins the 1→0 transition sends, so the buffered channel
// never blocks; a stale token merely causes one spurious loop.
func (sh *shard) maybeWake() {
	if sh.sleeping.Load() == 1 && sh.sleeping.CompareAndSwap(1, 0) {
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
}

// takeTask pops the oldest pending task, or nil.
func (sh *shard) takeTask() func() {
	if sh.taskCount.Load() == 0 {
		return nil
	}
	sh.taskMu.Lock()
	defer sh.taskMu.Unlock()
	if len(sh.tasks) == 0 {
		return nil
	}
	fn := sh.tasks[0]
	n := copy(sh.tasks, sh.tasks[1:])
	sh.tasks[n] = nil
	sh.tasks = sh.tasks[:n]
	sh.taskCount.Add(-1)
	return fn
}

// noteDepth folds a ring occupancy observation into the high-water mark.
func (sh *shard) noteDepth(d uint64) {
	for {
		cur := sh.depthHWM.Load()
		if d <= cur || sh.depthHWM.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Engine is the shard set plus its workers.
type Engine struct {
	opts   Options
	sink   Sink
	shards []*shard

	mu     sync.Mutex // guards producer registration
	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// New builds and starts an engine delivering batches to sink.
func New(sink Sink, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{opts: opts, sink: sink, stop: make(chan struct{})}
	e.shards = make([]*shard, opts.Shards)
	for i := range e.shards {
		e.shards[i] = &shard{id: i, wake: make(chan struct{}, 1)}
	}
	e.wg.Add(len(e.shards))
	for _, sh := range e.shards {
		go e.run(sh)
	}
	return e
}

// Shards returns the shard count — also the worker parallelism, and
// the knob Server.AdvanceAll routes batch prediction advances through.
func (e *Engine) Shards() int { return len(e.shards) }

// ShardFor returns the shard that owns sourceID. The pinning is a pure
// FNV-1a hash, so every producer and every reader agrees on ownership
// without coordination.
func (e *Engine) ShardFor(sourceID string) int {
	return int(fnv1a(sourceID) % uint64(len(e.shards)))
}

// fnv1a is an allocation-free FNV-1a over the id bytes.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Producer is one handoff lane into the engine: a private SPSC ring
// per shard. A Producer must be used from a single goroutine at a time;
// distinct producers (one per network reader) are fully independent.
type Producer struct {
	e     *Engine
	rings []*ring
}

// Producer registers a new producer lane. Safe to call while the
// engine is running; workers pick the new rings up on their next scan.
func (e *Engine) Producer() *Producer {
	e.mu.Lock()
	defer e.mu.Unlock()
	p := &Producer{e: e, rings: make([]*ring, len(e.shards))}
	for i, sh := range e.shards {
		r := newRing(e.opts.RingSize, sh)
		p.rings[i] = r
		old := sh.ringList()
		next := make([]*ring, len(old)+1)
		copy(next, old)
		next[len(old)] = r
		sh.rings.Store(&next)
	}
	return p
}

// publish copies u into the ring slot at tail and makes it visible.
func (r *ring) publish(t uint64, u *core.Update) {
	s := &r.slots[t&r.mask]
	s.sourceID = u.SourceID
	s.seq = int64(u.Seq)
	s.time = u.Time
	s.bootstrap = u.Bootstrap
	s.values = append(s.values[:0], u.Values...)
	r.sh.offered.Add(1)
	r.tail.Store(t + 1)
	r.sh.noteDepth(t + 1 - r.head.Load())
	r.sh.maybeWake()
}

// TryOffer enqueues u on shardID's ring, returning false (and counting
// a drop) when the ring is full or the engine is closed. This is the
// datagram path: a reader under overload sheds load rather than
// blocking the socket.
func (p *Producer) TryOffer(shardID int, u *core.Update) bool {
	r := p.rings[shardID]
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.slots)) || p.e.closed.Load() {
		r.sh.dropped.Add(1)
		return false
	}
	r.publish(t, u)
	return true
}

// Offer enqueues u, yielding until ring space frees — the in-process
// producer path, where backpressure is preferable to loss. Returns
// false only when the engine is closed.
func (p *Producer) Offer(shardID int, u *core.Update) bool {
	r := p.rings[shardID]
	for {
		if p.e.closed.Load() {
			return false
		}
		t := r.tail.Load()
		if t-r.head.Load() < uint64(len(r.slots)) {
			r.publish(t, u)
			return true
		}
		runtime.Gosched()
	}
}

// drain moves up to max published updates into batch (reusing each
// entry's Values storage) and frees their slots. Returns the count.
func (sh *shard) drain(batch []core.Update, max int) int {
	n := 0
	for _, r := range sh.ringList() {
		for n < max {
			h := r.head.Load()
			if h == r.tail.Load() {
				break
			}
			s := &r.slots[h&r.mask]
			dst := &batch[n]
			dst.SourceID = s.sourceID
			dst.Seq = int(s.seq)
			dst.Time = s.time
			dst.Bootstrap = s.bootstrap
			dst.Values = append(dst.Values[:0], s.values...)
			r.head.Store(h + 1)
			n++
		}
		if n >= max {
			break
		}
	}
	return n
}

// run is the shard worker: drain, apply, run tasks, park when idle.
// Ring updates outrank tasks — an advance can wait a batch, a full ring
// sheds — so tasks only run when the rings are momentarily dry.
func (e *Engine) run(sh *shard) {
	defer e.wg.Done()
	batch := make([]core.Update, e.opts.BatchSize)
	for {
		n := sh.drain(batch, e.opts.BatchSize)
		if n > 0 {
			e.sink.ApplyBatch(sh.id, batch[:n])
			sh.applied.Add(uint64(n))
			continue
		}
		if fn := sh.takeTask(); fn != nil {
			fn()
			continue
		}
		if e.closed.Load() {
			// Final sweep raced a producer's last publish: loop until
			// the rings are provably empty, then exit.
			if sh.pending() == 0 {
				return
			}
			continue
		}
		// Announce the nap, then re-check: a producer that published
		// before seeing sleeping=1 is caught by the pending() check; one
		// that published after will win the 1→0 CAS and send the token.
		sh.sleeping.Store(1)
		if sh.pending() > 0 || sh.taskCount.Load() > 0 || e.closed.Load() {
			sh.sleeping.Store(0)
			continue
		}
		select {
		case <-sh.wake:
		case <-e.stop:
		}
		sh.sleeping.Store(0)
	}
}

// RunOnShard hands fn to shardID's worker goroutine, returning false if
// the engine is closed (the caller should run fn itself, or not at all).
// Tasks run when the shard's rings are momentarily empty, serialized
// with the worker's own ApplyBatch calls — so fn touches shard-owned
// stream state with the exact single-writer guarantee ApplyBatch has.
// fn must not block on work scheduled for this same shard (deadlock) and
// should be short: the shard's rings buffer but do not apply while it
// runs.
func (e *Engine) RunOnShard(shardID int, fn func()) bool {
	sh := e.shards[shardID]
	sh.taskMu.Lock()
	if e.closed.Load() {
		// Checked under taskMu: Close drains the task list under this
		// same lock after the workers exit, so a task appended while
		// closed=false is always observed — by the worker or by Close.
		sh.taskMu.Unlock()
		return false
	}
	sh.tasks = append(sh.tasks, fn)
	sh.taskCount.Add(1)
	sh.taskMu.Unlock()
	sh.maybeWake()
	return true
}

// Quiesce blocks until every update offered so far has been applied.
// Meaningful only once producers have stopped offering (tests, drain
// before shutdown); with live producers it chases a moving target.
func (e *Engine) Quiesce() {
	for _, sh := range e.shards {
		for sh.applied.Load() < sh.offered.Load() {
			runtime.Gosched()
		}
	}
}

// Close drains what was already offered, stops the workers, and waits
// them out. Offers after Close return false. Tasks enqueued before the
// close still run — on their worker when it sweeps out, here otherwise —
// so a RunOnShard caller waiting on its task never hangs across a close.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	close(e.stop)
	e.wg.Wait()
	for _, sh := range e.shards {
		for {
			fn := sh.takeTask()
			if fn == nil {
				break
			}
			fn()
		}
	}
}

// ShardStats is one shard's occupancy snapshot.
type ShardStats struct {
	Shard        int    `json:"shard"`
	Offered      uint64 `json:"offered"`
	Applied      uint64 `json:"applied"`
	Dropped      uint64 `json:"dropped"`
	RingDepthHWM uint64 `json:"ring_depth_hwm"`
}

// Offered returns the total updates accepted onto rings across all
// shards. Allocation-free, so producers can poll it for flow control —
// a datagram source that bounds sent−Offered() keeps the kernel socket
// buffer from overflowing into silent loss.
func (e *Engine) Offered() uint64 {
	var n uint64
	for _, sh := range e.shards {
		n += sh.offered.Load()
	}
	return n
}

// Applied returns the total updates folded into filters across all
// shards. Allocation-free, for the same polling uses as Offered.
func (e *Engine) Applied() uint64 {
	var n uint64
	for _, sh := range e.shards {
		n += sh.applied.Load()
	}
	return n
}

// Stats snapshots every shard's counters.
func (e *Engine) Stats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, sh := range e.shards {
		out[i] = ShardStats{
			Shard:        i,
			Offered:      sh.offered.Load(),
			Applied:      sh.applied.Load(),
			Dropped:      sh.dropped.Load(),
			RingDepthHWM: sh.depthHWM.Load(),
		}
	}
	return out
}
