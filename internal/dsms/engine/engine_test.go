package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamkf/internal/core"
)

// recordSink captures applied updates, remembering which shard applied
// each source and asserting batches never carry a foreign source.
type recordSink struct {
	mu       sync.Mutex
	seqs     map[string][]int
	vals     map[string][]float64
	shardOf  map[string]int
	mismatch []string
}

func newRecordSink() *recordSink {
	return &recordSink{seqs: map[string][]int{}, vals: map[string][]float64{}, shardOf: map[string]int{}}
}

func (rs *recordSink) ApplyBatch(shard int, batch []core.Update) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i := range batch {
		u := &batch[i]
		if prev, ok := rs.shardOf[u.SourceID]; ok && prev != shard {
			rs.mismatch = append(rs.mismatch, fmt.Sprintf("%s applied by shards %d and %d", u.SourceID, prev, shard))
		}
		rs.shardOf[u.SourceID] = shard
		rs.seqs[u.SourceID] = append(rs.seqs[u.SourceID], u.Seq)
		rs.vals[u.SourceID] = append(rs.vals[u.SourceID], u.Values[0])
	}
}

// blockSink parks every apply until released — for ring-full tests.
type blockSink struct{ release chan struct{} }

func (bs *blockSink) ApplyBatch(int, []core.Update) { <-bs.release }

func mkUpdate(id string, seq int) core.Update {
	return core.Update{SourceID: id, Seq: seq, Time: float64(seq), Values: []float64{float64(seq) * 0.5}}
}

func TestShardForDeterministicAndSpread(t *testing.T) {
	sink := newRecordSink()
	e := New(sink, Options{Shards: 8})
	defer e.Close()
	seen := map[int]int{}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("src-%d", i)
		s1, s2 := e.ShardFor(id), e.ShardFor(id)
		if s1 != s2 {
			t.Fatalf("ShardFor(%q) unstable: %d vs %d", id, s1, s2)
		}
		if s1 < 0 || s1 >= 8 {
			t.Fatalf("ShardFor(%q) = %d out of range", id, s1)
		}
		seen[s1]++
	}
	for sh := 0; sh < 8; sh++ {
		if seen[sh] == 0 {
			t.Fatalf("shard %d received no sources out of 1000 — hash not spreading", sh)
		}
	}
}

func TestEngineSingleProducerOrdered(t *testing.T) {
	sink := newRecordSink()
	e := New(sink, Options{Shards: 4, RingSize: 64})
	defer e.Close()
	p := e.Producer()
	const sources, per = 16, 200
	for seq := 0; seq < per; seq++ {
		for s := 0; s < sources; s++ {
			id := fmt.Sprintf("src-%d", s)
			u := mkUpdate(id, seq)
			if !p.Offer(e.ShardFor(id), &u) {
				t.Fatalf("Offer rejected before Close")
			}
		}
	}
	e.Quiesce()
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.mismatch) > 0 {
		t.Fatalf("shard ownership violated: %v", sink.mismatch)
	}
	for s := 0; s < sources; s++ {
		id := fmt.Sprintf("src-%d", s)
		seqs := sink.seqs[id]
		if len(seqs) != per {
			t.Fatalf("%s: got %d updates, want %d", id, len(seqs), per)
		}
		for i, got := range seqs {
			if got != i {
				t.Fatalf("%s: update %d arrived with seq %d — order violated", id, i, got)
			}
			if want := float64(i) * 0.5; sink.vals[id][i] != want {
				t.Fatalf("%s: seq %d carried value %v, want %v — slot reuse corrupted payload", id, i, sink.vals[id][i], want)
			}
		}
	}
}

// TestEngineConcurrentProducers is the -race workhorse: several
// producers on distinct goroutines hammer disjoint source sets while
// workers drain. Per-source order and shard ownership must survive.
func TestEngineConcurrentProducers(t *testing.T) {
	sink := newRecordSink()
	e := New(sink, Options{Shards: 4, RingSize: 32})
	defer e.Close()
	const producers, sourcesEach, per = 4, 8, 300
	var wg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		p := e.Producer()
		wg.Add(1)
		go func(pi int, p *Producer) {
			defer wg.Done()
			for seq := 0; seq < per; seq++ {
				for s := 0; s < sourcesEach; s++ {
					id := fmt.Sprintf("p%d-src-%d", pi, s)
					u := mkUpdate(id, seq)
					p.Offer(e.ShardFor(id), &u)
				}
			}
		}(pi, p)
	}
	wg.Wait()
	e.Quiesce()
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.mismatch) > 0 {
		t.Fatalf("shard ownership violated: %v", sink.mismatch)
	}
	for pi := 0; pi < producers; pi++ {
		for s := 0; s < sourcesEach; s++ {
			id := fmt.Sprintf("p%d-src-%d", pi, s)
			seqs := sink.seqs[id]
			if len(seqs) != per {
				t.Fatalf("%s: got %d updates, want %d", id, len(seqs), per)
			}
			for i, got := range seqs {
				if got != i {
					t.Fatalf("%s: position %d has seq %d — per-source order violated", id, i, got)
				}
			}
			if e.ShardFor(id) != sink.shardOf[id] {
				t.Fatalf("%s: applied on shard %d but ShardFor says %d", id, sink.shardOf[id], e.ShardFor(id))
			}
		}
	}
}

func TestEngineTryOfferShedsWhenFull(t *testing.T) {
	bs := &blockSink{release: make(chan struct{})}
	e := New(bs, Options{Shards: 1, RingSize: 8, BatchSize: 4})
	p := e.Producer()
	// Fill until the ring rejects. The worker may drain one batch into
	// the blocked ApplyBatch, so offer enough to guarantee saturation.
	accepted, rejected := 0, 0
	for i := 0; i < 64; i++ {
		u := mkUpdate("only", i)
		if p.TryOffer(0, &u) {
			accepted++
		} else {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatalf("expected TryOffer rejections with a blocked sink (accepted=%d)", accepted)
	}
	st := e.Stats()[0]
	if st.Dropped != uint64(rejected) {
		t.Fatalf("dropped counter = %d, want %d", st.Dropped, rejected)
	}
	if st.RingDepthHWM == 0 {
		t.Fatalf("ring depth high-water mark never recorded")
	}
	close(bs.release)
	e.Close()
}

func TestEngineCloseDrainsOffered(t *testing.T) {
	sink := newRecordSink()
	e := New(sink, Options{Shards: 2, RingSize: 256})
	p := e.Producer()
	const n = 500
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("src-%d", i%10)
		u := mkUpdate(id, i/10)
		p.Offer(e.ShardFor(id), &u)
	}
	e.Close()
	sink.mu.Lock()
	total := 0
	for _, s := range sink.seqs {
		total += len(s)
	}
	sink.mu.Unlock()
	if total != n {
		t.Fatalf("Close drained %d of %d offered updates", total, n)
	}
	u := mkUpdate("late", 0)
	if p.Offer(e.ShardFor("late"), &u) || p.TryOffer(e.ShardFor("late"), &u) {
		t.Fatalf("offer accepted after Close")
	}
}

// TestEngineWakesParkedWorker ensures a worker parked on an empty ring
// is woken by the next publish rather than spinning or hanging.
func TestEngineWakesParkedWorker(t *testing.T) {
	sink := newRecordSink()
	e := New(sink, Options{Shards: 1, RingSize: 16})
	defer e.Close()
	p := e.Producer()
	for round := 0; round < 5; round++ {
		// Let the worker drain and park.
		e.Quiesce()
		time.Sleep(2 * time.Millisecond)
		u := mkUpdate("ping", round)
		p.Offer(0, &u)
		done := make(chan struct{})
		go func() { e.Quiesce(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: parked worker never woke", round)
		}
	}
}

// TestRunOnShardExecutesTasks asserts tasks hand-delivered to shard
// workers all run, interleaved with ongoing applies, and that the
// engine still applies afterwards.
func TestRunOnShardExecutesTasks(t *testing.T) {
	sink := newRecordSink()
	e := New(sink, Options{Shards: 4})
	defer e.Close()

	var ran atomic.Int32
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		for sh := 0; sh < 4; sh++ {
			wg.Add(1)
			if !e.RunOnShard(sh, func() { ran.Add(1); wg.Done() }) {
				t.Fatalf("RunOnShard(%d) refused on a live engine", sh)
			}
		}
	}
	wg.Wait()
	if got := ran.Load(); got != 32 {
		t.Fatalf("%d tasks ran, want 32", got)
	}

	p := e.Producer()
	u := mkUpdate("after-tasks", 1)
	if !p.Offer(e.ShardFor(u.SourceID), &u) {
		t.Fatal("Offer failed after tasks drained")
	}
	e.Quiesce()
	if len(sink.seqs["after-tasks"]) != 1 {
		t.Fatal("apply after RunOnShard never landed")
	}
}

// TestRunOnShardSerializedWithApplies is the single-writer proof the
// shard-aware StepAll leans on: tasks and ApplyBatch touch the same
// unsynchronized per-shard state, and only the worker-serialization
// guarantee keeps that sound. Run with -race, any overlap is an error.
func TestRunOnShardSerializedWithApplies(t *testing.T) {
	// One shard, so every apply and every task contend for one worker.
	var unsynced int // written by sink and tasks with no lock
	sink := countSink{n: &unsynced}
	e := New(sink, Options{Shards: 1, RingSize: 64})
	defer e.Close()

	p := e.Producer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			u := mkUpdate("s", i)
			p.Offer(0, &u)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		for !e.RunOnShard(0, func() { unsynced++; wg.Done() }) {
			t.Fatal("RunOnShard refused on a live engine")
		}
	}
	<-done
	wg.Wait()
	e.Quiesce()
	if unsynced != 600 {
		t.Fatalf("unsynced counter = %d, want 600 (500 applies + 100 tasks)", unsynced)
	}
}

// countSink bumps an unsynchronized counter per applied update — only
// sound because ApplyBatch is worker-serialized.
type countSink struct{ n *int }

func (cs countSink) ApplyBatch(_ int, batch []core.Update) { *cs.n += len(batch) }

// TestRunOnShardCloseSemantics: tasks enqueued before Close still run
// (by the worker or by Close's drain), and RunOnShard after Close
// refuses — the caller falls back to running the task inline.
func TestRunOnShardCloseSemantics(t *testing.T) {
	e := New(newRecordSink(), Options{Shards: 2})
	var ran atomic.Int32
	for i := 0; i < 50; i++ {
		if !e.RunOnShard(i%2, func() { ran.Add(1) }) {
			t.Fatal("RunOnShard refused before Close")
		}
	}
	e.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("%d of 50 pre-Close tasks ran after Close returned", got)
	}
	if e.RunOnShard(0, func() {}) {
		t.Fatal("RunOnShard accepted a task after Close")
	}
}
