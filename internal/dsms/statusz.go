package dsms

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"runtime"
	"strings"
	"time"

	"streamkf/internal/telemetry"
)

// Verdict surfacing: /healthz (machine probe), /statusz (human
// dashboard) and /metricsz (windowed-rate JSON API). All three are
// dependency-free — the dashboard is server-rendered HTML with inline
// SVG sparklines, no scripts, no external assets — and none of them
// stops the data path: they read the history ring under its RLock and
// the monitor under its own mutex, exactly like any other query.

// HealthzHandler serves the health verdict: 200 for ok and degraded
// (the server still answers queries), 503 for unhealthy. Plain text
// `<status>\n` by default; `?verbose=1` returns the full JSON document
// with machine-readable reasons.
func HealthzHandler(s *Server) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		h := s.Health()
		code := http.StatusOK
		if h.Status == verdictName(verdictUnhealthy) {
			code = http.StatusServiceUnavailable
		}
		if req.URL.Query().Get("verbose") != "" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(h)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(code)
		fmt.Fprintf(w, "%s\n", h.Status)
	}
}

// metricszSeries is one series in the /metricsz document.
type metricszSeries struct {
	Name       string            `json:"name"`
	Labels     map[string]string `json:"labels,omitempty"`
	Kind       string            `json:"kind"`
	Value      float64           `json:"value"`
	RatePerSec *float64          `json:"rate_per_sec,omitempty"`
	P50        *float64          `json:"p50,omitempty"`
	P99        *float64          `json:"p99,omitempty"`
}

// metricszResponse is the /metricsz document.
type metricszResponse struct {
	WindowSeconds float64          `json:"window_seconds"`
	Slots         int              `json:"slots"`
	Filled        int              `json:"filled"`
	EverySeconds  float64          `json:"every_seconds"`
	Series        []metricszSeries `json:"series"`
}

var seriesKindNames = map[telemetry.SeriesKind]string{
	telemetry.SeriesCounter:   "counter",
	telemetry.SeriesGauge:     "gauge",
	telemetry.SeriesGaugeFunc: "gauge",
	telemetry.SeriesHistogram: "histogram",
}

// MetricszHandler serves windowed rates and quantiles from the history
// ring: every tracked series' latest value, plus rate_per_sec for
// cumulative series and p50/p99 for histograms over the trailing
// window. Parameters: window (Go duration, default 30s), name (exact
// metric-family filter). 503 when self-monitoring is off.
func MetricszHandler(s *Server) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		m := s.SelfMon()
		if m == nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error": "self-monitoring disabled; start the server with -selfmon"}`)
			return
		}
		window := 30 * time.Second
		if v := req.URL.Query().Get("window"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				http.Error(w, "bad window: "+v, http.StatusBadRequest)
				return
			}
			window = d
		}
		nameFilter := req.URL.Query().Get("name")
		ring := m.History()
		slots, filled, every, _, _ := ring.Meta()
		resp := metricszResponse{
			WindowSeconds: window.Seconds(),
			Slots:         slots,
			Filled:        filled,
			EverySeconds:  every.Seconds(),
		}
		for _, info := range ring.Series() {
			if nameFilter != "" && info.Name != nameFilter {
				continue
			}
			out := metricszSeries{Name: info.Name, Kind: seriesKindNames[info.Kind]}
			if len(info.Labels) > 0 {
				out.Labels = make(map[string]string, len(info.Labels))
				for _, l := range info.Labels {
					out.Labels[l.Key] = l.Value
				}
			}
			out.Value, _ = ring.Latest(info.Name, info.Labels...)
			switch info.Kind {
			case telemetry.SeriesCounter, telemetry.SeriesHistogram:
				if r, ok := ring.Rate(info.Name, window, info.Labels...); ok {
					out.RatePerSec = &r
				}
				if info.Kind == telemetry.SeriesHistogram {
					if q, ok := ring.WindowQuantile(info.Name, window, 0.50, info.Labels...); ok {
						out.P50 = &q
					}
					if q, ok := ring.WindowQuantile(info.Name, window, 0.99, info.Labels...); ok {
						out.P99 = &q
					}
				}
			}
			resp.Series = append(resp.Series, out)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	}
}

// sparklineSVG renders samples as an inline SVG polyline, oldest to
// newest, auto-scaled to the sample range. Empty input renders an
// empty frame.
func sparklineSVG(samples []float64, w, h int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" preserveAspectRatio="none" class="spark">`, w, h, w, h)
	if len(samples) >= 2 {
		lo, hi := samples[0], samples[0]
		for _, v := range samples {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		if span == 0 {
			span = 1
		}
		b.WriteString(`<polyline fill="none" stroke="currentColor" stroke-width="1" points="`)
		dx := float64(w-2) / float64(len(samples)-1)
		for i, v := range samples {
			x := 1 + dx*float64(i)
			y := 1 + (float64(h-2))*(1-(v-lo)/span)
			fmt.Fprintf(&b, "%.1f,%.1f ", x, y)
		}
		b.WriteString(`"/>`)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// statuszStyle is the dashboard's inline stylesheet.
const statuszStyle = `<style>
body{font-family:system-ui,sans-serif;margin:1.5rem;color:#1a1a1a;max-width:70rem}
h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:1.6rem}
table{border-collapse:collapse;width:100%}
th,td{text-align:left;padding:.3rem .6rem;border-bottom:1px solid #ddd;font-size:.85rem}
th{color:#555;font-weight:600}
.num{text-align:right;font-variant-numeric:tabular-nums}
.badge{display:inline-block;padding:.15rem .6rem;border-radius:.3rem;color:#fff;font-weight:600}
.ok{background:#2a7d2a}.degraded{background:#c77d00}.unhealthy{background:#b3261e}
.spark{color:#3366cc;vertical-align:middle}
.active{color:#b3261e;font-weight:600}
.muted{color:#888}
nav a{margin-right:1rem}
</style>`

// StatuszHandler serves the self-monitoring dashboard: verdict badge,
// build identity, active findings, and the per-signal table with
// sparklines. Degrades gracefully to a pointer page when
// self-monitoring is off.
func StatuszHandler(s *Server) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		var b strings.Builder
		b.WriteString("<!DOCTYPE html><html><head><title>dkf statusz</title>")
		b.WriteString(statuszStyle)
		b.WriteString("</head><body><h1>DKF server status</h1>")
		b.WriteString(`<nav><a href="/metrics">/metrics</a><a href="/metricsz">/metricsz</a><a href="/streamz">/streamz</a><a href="/tracez">/tracez</a><a href="/healthz?verbose=1">/healthz</a><a href="/debug/pprof/">/debug/pprof</a></nav>`)

		h := s.Health()
		fmt.Fprintf(&b, `<p>Verdict: <span class="badge %s">%s</span>`, h.Status, h.Status)
		fmt.Fprintf(&b, ` <span class="muted">version %s · %s · up %s</span></p>`,
			html.EscapeString(Version), runtime.Version(), time.Duration(h.UptimeSeconds*float64(time.Second)).Truncate(time.Second))

		m := s.SelfMon()
		if m == nil {
			b.WriteString(`<p class="muted">Self-monitoring is off — start the server with <code>-selfmon</code> for verdicts, findings and sparklines.</p></body></html>`)
			fmt.Fprint(w, b.String())
			return
		}

		if len(h.Reasons) > 0 {
			b.WriteString("<h2>Active reasons</h2><table><tr><th>signal</th><th>kind</th><th class=num>value</th><th class=num>pred</th><th class=num>residual</th><th class=num>δ</th><th class=num>ticks ago</th></tr>")
			for _, r := range h.Reasons {
				cls := ""
				if r.Critical {
					cls = ` class="active"`
				}
				fmt.Fprintf(&b, `<tr><td%s>%s</td><td>%s</td><td class=num>%.4g</td><td class=num>%.4g</td><td class=num>%.4g</td><td class=num>%.4g</td><td class=num>%d</td></tr>`,
					cls, html.EscapeString(r.Signal), r.Kind, r.Value, r.Pred, r.Residual, r.Delta, r.TicksAgo)
			}
			b.WriteString("</table>")
		}

		b.WriteString("<h2>Signals</h2><table><tr><th>signal</th><th>trend</th><th class=num>value</th><th class=num>δ</th><th>model</th><th class=num>updates</th><th class=num>suppressed</th><th>state</th></tr>")
		for _, sig := range m.Signals() {
			state := "ok"
			cls := ""
			switch {
			case sig.Active:
				state, cls = "active", ` class="active"`
			case !sig.Fed:
				state, cls = "idle", ` class="muted"`
			}
			title := html.EscapeString(sig.Help)
			crit := ""
			if sig.Critical {
				crit = " *"
			}
			fmt.Fprintf(&b, `<tr><td title="%s">%s%s</td><td>%s</td><td class=num>%.4g</td><td class=num>%.4g</td><td>%s</td><td class=num>%d</td><td class=num>%d</td><td%s>%s</td></tr>`,
				title, html.EscapeString(sig.Name), crit, sparklineSVG(sig.Samples, 120, 24),
				sig.Value, sig.Delta, sig.Model, sig.Updates, sig.Suppressed, cls, state)
		}
		b.WriteString(`</table><p class="muted">* critical signal — active findings make the verdict unhealthy. updates = δ-violating transmissions (incl. bootstrap), suppressed = readings the self-model predicted within δ.</p>`)

		findings := m.Findings(20)
		b.WriteString("<h2>Recent findings</h2>")
		if len(findings) == 0 {
			b.WriteString(`<p class="muted">None — the server matches its own model.</p>`)
		} else {
			b.WriteString("<table><tr><th>time</th><th>signal</th><th>kind</th><th class=num>value</th><th class=num>pred</th><th class=num>residual</th><th class=num>δ</th><th class=num>NIS</th></tr>")
			for _, f := range findings {
				fmt.Fprintf(&b, `<tr><td>%s</td><td>%s</td><td>%s</td><td class=num>%.4g</td><td class=num>%.4g</td><td class=num>%.4g</td><td class=num>%.4g</td><td class=num>%.3g</td></tr>`,
					f.Time.Format("15:04:05"), html.EscapeString(f.Signal), f.Kind, f.Value, f.Pred, f.Residual, f.Delta, f.NIS)
			}
			b.WriteString("</table>")
		}

		slots, filled, every, span, dropped := m.History().Meta()
		fmt.Fprintf(&b, `<p class="muted">history ring: %d/%d slots · every %s · span %s`, filled, slots, every, span.Truncate(time.Second))
		if dropped > 0 {
			fmt.Fprintf(&b, ` · %d series dropped past cap`, dropped)
		}
		b.WriteString("</p></body></html>")
		fmt.Fprint(w, b.String())
	}
}
