package dsms

import (
	"sync"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/stream"
)

func TestAlertValidate(t *testing.T) {
	good := Alert{ID: "a", QueryID: "q", Threshold: 5, Direction: AlertAbove}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid alert rejected: %v", err)
	}
	bad := []Alert{
		{QueryID: "q"},
		{ID: "a"},
		{ID: "a", QueryID: "q", Direction: AlertDirection(9)},
		{ID: "a", QueryID: "q", Hysteresis: -1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, a)
		}
	}
}

func TestRegisterAlertValidation(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 1, Model: "constant"})
	a := Alert{ID: "a", QueryID: "q", Threshold: 5, Direction: AlertAbove}
	if err := s.RegisterAlert(a, nil); err == nil {
		t.Fatal("accepted nil callback")
	}
	noop := func(AlertEvent) {}
	if err := s.RegisterAlert(Alert{ID: "x", QueryID: "ghost", Threshold: 1}, noop); err == nil {
		t.Fatal("accepted unknown query")
	}
	if err := s.RegisterAlert(a, noop); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterAlert(a, noop); err == nil {
		t.Fatal("accepted duplicate alert id")
	}
	if ids := s.AlertIDs(); len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("AlertIDs = %v", ids)
	}
}

// driveSource streams values through an installed source agent.
func driveSource(t *testing.T, s *Server, sourceID string, vals []float64) {
	t.Helper()
	cfg, err := s.InstallFor(sourceID)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error { return s.HandleUpdate(u) }))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Run(stream.NewSliceSource(stream.FromValues(vals, 1))); err != nil {
		t.Fatal(err)
	}
}

func TestAlertFiresOnceWithHysteresis(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 1, Model: "constant"})

	var mu sync.Mutex
	var events []AlertEvent
	err := s.RegisterAlert(Alert{ID: "hot", QueryID: "q", Threshold: 100, Direction: AlertAbove, Hysteresis: 10},
		func(e AlertEvent) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}

	// Climb over the threshold, wobble above it (must NOT refire), dip
	// into the hysteresis band (still armed=fired), then fall far below
	// (re-arms) and climb again (fires a second time).
	var vals []float64
	vals = append(vals, 50, 80, 120)   // fire #1 at 120
	vals = append(vals, 130, 110, 125) // wobble above: silent
	vals = append(vals, 95)            // inside band (>90): still silent
	vals = append(vals, 50, 40)        // below 90: re-arm
	vals = append(vals, 150)           // fire #2
	driveSource(t, s, "src", vals)

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("alert fired %d times, want 2: %+v", len(events), events)
	}
	if events[0].Value < 100 || events[1].Value < 100 {
		t.Fatalf("fired below threshold: %+v", events)
	}
	if events[0].AlertID != "hot" || events[0].QueryID != "q" {
		t.Fatalf("event metadata wrong: %+v", events[0])
	}
}

func TestAlertBelowDirection(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 1, Model: "constant"})
	var fired int
	err := s.RegisterAlert(Alert{ID: "low", QueryID: "q", Threshold: 10, Direction: AlertBelow, Hysteresis: 2},
		func(AlertEvent) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	// The filter estimate lags raw values (gain < 1), so each level gets
	// a few samples to settle below/above the threshold.
	driveSource(t, s, "src", []float64{50, 5, 5, 5, 30, 30, 30, 4, 4, 4})
	if fired != 2 {
		t.Fatalf("below alert fired %d times, want 2", fired)
	}
}

func TestAlertOnAggregateQuery(t *testing.T) {
	s := NewServer(testCatalog())
	agg := AggregateQuery{ID: "mean", SourceIDs: []string{"a", "b"}, Func: AggAvg, Delta: 2, Model: "constant"}
	if err := s.RegisterAggregate(agg); err != nil {
		t.Fatal(err)
	}
	var fired int
	err := s.RegisterAlert(Alert{ID: "m", QueryID: "mean", Threshold: 100, Direction: AlertAbove},
		func(AlertEvent) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	// Stream both sources; the mean crosses 100 only when both are high.
	driveSource(t, s, "a", []float64{50, 60, 150, 150})
	if fired != 0 {
		t.Fatalf("aggregate alert fired with source b silent: %d", fired)
	}
	driveSource(t, s, "b", []float64{50, 60, 150, 150})
	if fired != 1 {
		t.Fatalf("aggregate alert fired %d times, want 1", fired)
	}
}

func TestAlertSuppressedWithinDelta(t *testing.T) {
	// Values that wobble inside the precision width never reach the
	// server (suppressed), so an alert threshold inside the wobble band
	// cannot flap: it is evaluated only on real updates.
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 10, Model: "constant"})
	var fired int
	err := s.RegisterAlert(Alert{ID: "a", QueryID: "q", Threshold: 52, Direction: AlertAbove},
		func(AlertEvent) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	driveSource(t, s, "src", []float64{50, 51, 53, 51, 54, 50, 53})
	if fired != 0 {
		t.Fatalf("alert fired %d times on suppressed wobble", fired)
	}
}
