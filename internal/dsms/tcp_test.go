package dsms

import (
	"math"
	"net"
	"strings"
	"sync"
	"testing"

	"streamkf/internal/dsms/wire"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

// startServer spins up a TCP server on a random port and returns it with
// a cleanup hook.
func startServer(t *testing.T, s *Server) *TCPServer {
	t.Helper()
	ts, err := NewTCPServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ts.Serve() }()
	t.Cleanup(func() {
		ts.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ts
}

func TestTCPEndToEnd(t *testing.T) {
	catalog := testCatalog()
	s := NewServer(catalog)
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 3, Model: "linear"})
	ts := startServer(t, s)

	agent, err := DialSource(ts.Addr(), "walk", catalog)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	data := gen.Ramp(300, 0, 2, 0.05, 17)
	if err := agent.Run(stream.NewSliceSource(data)); err != nil {
		t.Fatal(err)
	}

	qc, err := DialQuery(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	last := data[len(data)-1]
	ans, err := qc.Ask("q1", last.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans[0]-last.Values[0]) > 6 {
		t.Fatalf("TCP answer %v, truth %v", ans[0], last.Values[0])
	}
	if st := agent.Stats(); st.Updates >= st.Readings {
		t.Fatalf("no suppression over TCP: %+v", st)
	}
}

func TestTCPHandshakeUnknownSource(t *testing.T) {
	catalog := testCatalog()
	ts := startServer(t, NewServer(catalog))
	if _, err := DialSource(ts.Addr(), "ghost", catalog); err == nil {
		t.Fatal("handshake succeeded for unregistered source")
	}
}

func TestTCPHandshakeUnknownModelClientSide(t *testing.T) {
	serverCatalog := testCatalog()
	s := NewServer(serverCatalog)
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "s", Delta: 1, Model: "linear"})
	ts := startServer(t, s)
	// Client catalog lacking the model must fail the handshake cleanly.
	if _, err := DialSource(ts.Addr(), "s", NewCatalog()); err == nil {
		t.Fatal("handshake succeeded with client missing the model")
	}
}

func TestTCPQueryErrors(t *testing.T) {
	ts := startServer(t, NewServer(testCatalog()))
	qc, err := DialQuery(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	if _, err := qc.Ask("missing", 0); err == nil || !strings.Contains(err.Error(), "unknown query") {
		t.Fatalf("Ask on unknown query: %v", err)
	}
	// The connection must survive an error reply.
	if _, err := qc.Ask("missing", 1); err == nil {
		t.Fatal("second Ask should still reach the server")
	}
}

func TestTCPMultipleSourcesConcurrently(t *testing.T) {
	catalog := testCatalog()
	s := NewServer(catalog)
	ids := []string{"a", "b", "c", "d"}
	for _, id := range ids {
		mustRegister(t, s, stream.Query{ID: "q-" + id, SourceID: id, Delta: 2, Model: "linear"})
	}
	ts := startServer(t, s)

	var wg sync.WaitGroup
	errs := make(chan error, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			agent, err := DialSource(ts.Addr(), id, catalog)
			if err != nil {
				errs <- err
				return
			}
			defer agent.Close()
			errs <- agent.Run(stream.NewSliceSource(gen.Ramp(200, float64(i*100), 1.5, 0.05, int64(i))))
		}(i, id)
	}
	// Query clients hammer the server while the pipelined agents
	// stream. Asking at seq 0 never advances a filter past an in-flight
	// update, so this is safe concurrency, not a protocol violation.
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for w := 0; w < 2; w++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			qc, err := DialQuery(ts.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer qc.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					// Errors are expected before a source bootstraps;
					// only a dead connection fails the test.
					if _, err := qc.Ask("q-"+id, 0); err != nil && strings.Contains(err.Error(), "receive") {
						t.Errorf("query conn died mid-stream: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	qwg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	qc, err := DialQuery(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	for i, id := range ids {
		ans, err := qc.Ask("q-"+id, 199)
		if err != nil {
			t.Fatalf("query %s: %v", id, err)
		}
		want := float64(i*100) + 1.5*199
		if math.Abs(ans[0]-want) > 6 {
			t.Fatalf("source %s answer %v, want ~%v", id, ans[0], want)
		}
	}
	stats := s.Stats()
	if len(stats) != len(ids) {
		t.Fatalf("stats for %d sources, want %d", len(stats), len(ids))
	}
	for _, st := range stats {
		if st.Updates == 0 || st.Updates >= 200 {
			t.Fatalf("source %s degenerate update count %d", st.SourceID, st.Updates)
		}
	}
}

func TestTCPServerRejectsUnknownTag(t *testing.T) {
	ts := startServer(t, NewServer(testCatalog()))
	conn, err := net.Dial("tcp", ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WritePreamble(conn, wire.Version); err != nil {
		t.Fatal(err)
	}
	// A well-formed frame with an unassigned tag.
	if _, err := conn.Write([]byte{1, 0, 0, 0, 0x7f}); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(conn, 0, 0)
	if _, err := r.ReadPreamble(); err != nil {
		t.Fatal(err)
	}
	tag, p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := wire.DecodeError(p)
	if tag != wire.TagError || !strings.Contains(msg, "unknown message tag") {
		t.Fatalf("reply = %v %q, want unknown-tag error", tag, msg)
	}
	// The connection must survive an unknown tag: a query still works
	// on the same conn (it errors on the unknown id, proving the server
	// processed it).
	w := wire.NewWriter(conn, 0, 0)
	if err := w.Query("missing", 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tag, p, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	msg, _ = wire.DecodeError(p)
	if tag != wire.TagError || !strings.Contains(msg, "unknown query") {
		t.Fatalf("reply after unknown tag = %v %q, want unknown-query error", tag, msg)
	}
}
