package dsms

import (
	"math"
	"testing"

	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

// TestTCPPipelinedEquivalence replays one stream through the old
// synchronous-ack semantics (window=1: every update waits for its ack)
// and through the pipelined window (window=64), plus the in-process
// reference, and requires bit-identical server-side trajectories:
// identical update/suppression counts and identical query answers at
// every checkpoint. Pipelining cannot change DKF behavior because
// suppression decisions are made source-side against the mirror filter
// — ack latency is invisible to them — and the server folds updates in
// sequence order either way.
func TestTCPPipelinedEquivalence(t *testing.T) {
	data := gen.Ramp(600, 5, 1.7, 0.8, 23)
	checkpoints := []int{99, 250, 599}

	type result struct {
		updates    int
		suppressed int
		answers    [][]float64
	}
	run := func(window int) result {
		catalog := testCatalog()
		s := NewServer(catalog)
		mustRegister(t, s, stream.Query{ID: "q1", SourceID: "src", Delta: 2, Model: "linear"})
		ts := startServer(t, s)
		agent, err := DialSourceOptions(ts.Addr(), "src", catalog, DialOptions{Window: window})
		if err != nil {
			t.Fatal(err)
		}
		defer agent.Close()
		qc, err := DialQuery(ts.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer qc.Close()
		// Replay with mid-stream queries at each checkpoint: drain the
		// pipeline, then ask — the trajectory up to that point must
		// already be folded in, exactly as the synchronous protocol
		// would have it.
		var res result
		next := 0
		for _, cp := range checkpoints {
			for ; next <= cp; next++ {
				if _, err := agent.Offer(data[next]); err != nil {
					t.Fatal(err)
				}
			}
			if err := agent.Drain(); err != nil {
				t.Fatal(err)
			}
			ans, err := qc.Ask("q1", cp)
			if err != nil {
				t.Fatal(err)
			}
			res.answers = append(res.answers, ans)
		}
		st := agent.Stats()
		res.updates, res.suppressed = st.Updates, st.Suppressed
		return res
	}

	sync := run(1)
	pipelined := run(DefaultWindow)

	if sync.updates != pipelined.updates || sync.suppressed != pipelined.suppressed {
		t.Fatalf("protocol counters diverge: sync ack %d/%d, pipelined %d/%d (updates/suppressed)",
			sync.updates, pipelined.updates, sync.suppressed, pipelined.suppressed)
	}
	if sync.updates == 0 || sync.suppressed == 0 {
		t.Fatalf("degenerate stream: updates=%d suppressed=%d", sync.updates, sync.suppressed)
	}
	for i := range checkpoints {
		a, b := sync.answers[i], pipelined.answers[i]
		if len(a) != len(b) {
			t.Fatalf("checkpoint %d: answer lengths %d vs %d", checkpoints[i], len(a), len(b))
		}
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("checkpoint seq %d attr %d: sync ack %v, pipelined %v — trajectories diverged",
					checkpoints[i], j, a[j], b[j])
			}
		}
	}
}
