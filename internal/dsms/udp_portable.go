//go:build !linux || (!amd64 && !arm64)

// Portable datagram I/O fallback: one ReadFromUDPAddrPort per receive
// (a batch of exactly 1) and one Write per sealed datagram. Platforms
// with batched syscalls get udp_linux.go instead; the lane structure
// above this layer is identical either way, so the multi-lane server
// and the batcher behave the same everywhere — only the syscalls-per-
// datagram ratio differs.
package dsms

import (
	"net"
	"net/netip"
)

// mmsgAvailable reports that the batch-size knobs are inert here: reads
// return one datagram and sends issue one syscall per datagram.
const mmsgAvailable = false

// laneRx is one lane's receive state: a single datagram buffer.
type laneRx struct {
	conn *net.UDPConn
	buf  []byte
	n    int
	from netip.AddrPort
}

func newLaneRx(conn *net.UDPConn, batch, maxDatagram int) (*laneRx, error) {
	return &laneRx{conn: conn, buf: make([]byte, maxDatagram)}, nil
}

// read blocks for one datagram and reports a batch of 1.
func (rx *laneRx) read() (int, error) {
	n, addr, err := rx.conn.ReadFromUDPAddrPort(rx.buf)
	if err != nil {
		return 0, err
	}
	rx.n, rx.from = n, addr
	return 1, nil
}

func (rx *laneRx) msg(i int) []byte          { return rx.buf[:rx.n] }
func (rx *laneRx) addr(i int) netip.AddrPort { return rx.from }

// batchTx degrades to a write per datagram.
type batchTx struct{ conn *net.UDPConn }

func newBatchTx(conn *net.UDPConn) (*batchTx, error) {
	return &batchTx{conn: conn}, nil
}

func (tx *batchTx) sendAll(pkts [][]byte) error {
	for _, p := range pkts {
		if _, err := tx.conn.Write(p); err != nil {
			return err
		}
	}
	return nil
}
