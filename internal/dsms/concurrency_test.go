package dsms

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/stream"
)

// concurrencyReadings builds a deterministic single-attribute stream for
// source i: a slow ramp plus a phase-shifted sine, noisy enough that a
// tight delta forces a healthy mix of updates and suppressions.
func concurrencyReadings(i, n int) []stream.Reading {
	vals := make([]float64, n)
	for k := 0; k < n; k++ {
		vals[k] = 0.1*float64(k) + 2*math.Sin(0.3*float64(k)+float64(i))
	}
	return stream.FromValues(vals, 1)
}

// TestConcurrentIngestAndQuery exercises the sharded locking: N sources
// ingest from N goroutines while other goroutines hammer Answer, Stats,
// SourceIDs and HistoryStats on all streams. Run under -race this covers
// the topology-RLock + per-source-mutex scheme end to end.
func TestConcurrentIngestAndQuery(t *testing.T) {
	const (
		nSources = 8
		nSteps   = 300
	)
	s := NewServer(testCatalog())
	for i := 0; i < nSources; i++ {
		q := stream.Query{
			ID:       fmt.Sprintf("q%d", i),
			SourceID: fmt.Sprintf("s%d", i),
			Delta:    0.5,
			Model:    "linear",
		}
		if err := s.Register(q); err != nil {
			t.Fatal(err)
		}
		if err := s.EnableHistory(q.SourceID); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 2*nSources)

	// Writers: one goroutine per source, driving a full agent (mirror
	// filter + suppression) whose transport is a direct HandleUpdate call.
	for i := 0; i < nSources; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			srcID := fmt.Sprintf("s%d", i)
			cfg, err := s.InstallFor(srcID)
			if err != nil {
				errc <- err
				return
			}
			agent, err := NewAgent(cfg, core.TransportFunc(s.HandleUpdate))
			if err != nil {
				errc <- err
				return
			}
			if err := agent.Run(stream.NewSliceSource(concurrencyReadings(i, nSteps))); err != nil {
				errc <- fmt.Errorf("source %s: %w", srcID, err)
			}
		}(i)
	}

	// Readers: one goroutine per source, querying every stream at seq 0
	// (never advancing any filter past its ingest position) plus the
	// cross-stream accessors.
	for i := 0; i < nSources; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				qid := fmt.Sprintf("q%d", (i+r)%nSources)
				// Before the bootstrap lands this legitimately errors;
				// only data races (caught by -race) are failures here.
				s.Answer(qid, 0)
				s.Stats()
				s.SourceIDs()
				s.HistoryStats(fmt.Sprintf("s%d", (i+r)%nSources))
			}
		}(i)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every source must have ingested its whole stream. The server's seq
	// rests at the last transmitted update (suppressed tail readings are
	// advanced lazily), so query each stream at the final index to pull
	// every filter forward, then check.
	stats := s.Stats()
	if len(stats) != nSources {
		t.Fatalf("Stats reports %d sources, want %d", len(stats), nSources)
	}
	for _, st := range stats {
		if st.Updates == 0 {
			t.Errorf("source %s ingested no updates", st.SourceID)
		}
	}
	for i := 0; i < nSources; i++ {
		if _, err := s.Answer(fmt.Sprintf("q%d", i), nSteps-1); err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range s.Stats() {
		if st.Seq != nSteps-1 {
			t.Errorf("source %s at seq %d, want %d", st.SourceID, st.Seq, nSteps-1)
		}
	}
}

// TestStepAllAdvancesAllStreams checks the bounded-worker batch path:
// after ingest stops, StepAll must bring every stream's prediction
// forward to the target index, whatever the pool size.
func TestStepAllAdvancesAllStreams(t *testing.T) {
	const nSources = 5
	s := NewServer(testCatalog())
	for i := 0; i < nSources; i++ {
		q := stream.Query{
			ID:       fmt.Sprintf("q%d", i),
			SourceID: fmt.Sprintf("s%d", i),
			Delta:    0.5,
			Model:    "linear",
		}
		if err := s.Register(q); err != nil {
			t.Fatal(err)
		}
		cfg, err := s.InstallFor(q.SourceID)
		if err != nil {
			t.Fatal(err)
		}
		agent, err := NewAgent(cfg, core.TransportFunc(s.HandleUpdate))
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Run(stream.NewSliceSource(concurrencyReadings(i, 50))); err != nil {
			t.Fatal(err)
		}
	}

	for _, workers := range []int{0, 1, 3, 16} {
		target := 100 + 50*workers
		advanced := s.StepAll(target, workers)
		if advanced != nSources {
			t.Fatalf("StepAll(workers=%d) advanced %d sources, want %d", workers, advanced, nSources)
		}
		for _, st := range s.Stats() {
			if st.Seq != target {
				t.Fatalf("workers=%d: source %s at seq %d, want %d", workers, st.SourceID, st.Seq, target)
			}
		}
		// A second call at the same target is a no-op.
		if again := s.StepAll(target, workers); again != 0 {
			t.Fatalf("repeat StepAll advanced %d sources, want 0", again)
		}
	}
}

// TestStepAllConcurrentWithQueries runs StepAll from several goroutines
// while readers query; under -race this pins the pool's per-source
// locking against the query path.
func TestStepAllConcurrentWithQueries(t *testing.T) {
	const nSources = 4
	s := NewServer(testCatalog())
	for i := 0; i < nSources; i++ {
		q := stream.Query{
			ID:       fmt.Sprintf("q%d", i),
			SourceID: fmt.Sprintf("s%d", i),
			Delta:    0.5,
			Model:    "linear",
		}
		if err := s.Register(q); err != nil {
			t.Fatal(err)
		}
		cfg, err := s.InstallFor(q.SourceID)
		if err != nil {
			t.Fatal(err)
		}
		agent, err := NewAgent(cfg, core.TransportFunc(s.HandleUpdate))
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.Run(stream.NewSliceSource(concurrencyReadings(i, 20))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				s.StepAll(20+r, 2)
				if _, err := s.Answer(fmt.Sprintf("q%d", (g+r)%nSources), 0); err != nil {
					// All sources bootstrapped before this point.
					t.Errorf("Answer: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for _, st := range s.Stats() {
		if st.Seq < 69 {
			t.Errorf("source %s at seq %d, want >= 69", st.SourceID, st.Seq)
		}
	}
}
