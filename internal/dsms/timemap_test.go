package dsms

import (
	"math"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/stream"
)

func TestTimeMapRateAndSeq(t *testing.T) {
	var tm timeMap
	if _, ok := tm.rate(); ok {
		t.Fatal("rate before anchoring")
	}
	tm.observe(0, 100)
	if _, ok := tm.rate(); ok {
		t.Fatal("rate with a single anchor")
	}
	tm.observe(10, 110) // 1 s per reading
	dt, ok := tm.rate()
	if !ok || dt != 1 {
		t.Fatalf("rate = %v, %v; want 1, true", dt, ok)
	}
	seq, err := tm.seqFor(125)
	if err != nil || seq != 25 {
		t.Fatalf("seqFor(125) = %d, %v; want 25", seq, err)
	}
	if _, err := tm.seqFor(50); err == nil {
		t.Fatal("mapped a pre-stream timestamp")
	}
	// Stale or rewound observations must not corrupt the anchors.
	tm.observe(5, 104)
	if dt, _ := tm.rate(); dt != 1 {
		t.Fatalf("stale observe changed rate to %v", dt)
	}
}

// timedRamp emits a slope-2 ramp sampled every 0.5 s starting at t=1000.
func timedRamp(n int) []stream.Reading {
	out := make([]stream.Reading, n)
	for i := range out {
		out[i] = stream.Reading{Seq: i, Time: 1000 + 0.5*float64(i), Values: []float64{2 * float64(i)}}
	}
	return out
}

func TestAnswerAtTimeEndToEnd(t *testing.T) {
	s := NewServer(testCatalog())
	mustRegister(t, s, stream.Query{ID: "q", SourceID: "src", Delta: 1, Model: "linear"})
	if err := s.EnableHistory("src"); err != nil {
		t.Fatal(err)
	}
	cfg, err := s.InstallFor("src")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error { return s.HandleUpdate(u) }))
	if err != nil {
		t.Fatal(err)
	}
	data := timedRamp(200)
	if err := agent.Run(stream.NewSliceSource(data)); err != nil {
		t.Fatal(err)
	}

	// Sampling rate inferred from updates: 0.5 s per reading.
	if seq, err := s.SeqForTime("src", 1000+0.5*60); err != nil || seq != 60 {
		t.Fatalf("SeqForTime = %d, %v; want 60", seq, err)
	}
	if _, err := s.SeqForTime("ghost", 1000); err == nil {
		t.Fatal("SeqForTime for unknown source")
	}

	// Past timestamp resolves through history.
	past, err := s.AnswerAtTime("q", 1000+0.5*60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(past[0]-120) > 3 {
		t.Fatalf("past answer %v, want ~120", past[0])
	}
	// Future timestamp extrapolates the live prediction.
	future, err := s.AnswerAtTime("q", 1000+0.5*250)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(future[0]-500) > 10 {
		t.Fatalf("future answer %v, want ~500", future[0])
	}
	if _, err := s.AnswerAtTime("missing", 1000); err == nil {
		t.Fatal("AnswerAtTime for unknown query")
	}
	if _, err := s.AnswerAtTime("q", 1); err == nil {
		t.Fatal("AnswerAtTime for pre-stream timestamp")
	}
}
