package dsms

import (
	"fmt"
	"sort"
	"strings"

	"streamkf/internal/stream"
	"streamkf/internal/window"
)

// WindowQuery is a time-windowed aggregate over one source: "the average
// answer over the last N readings" (e.g. mean load over the last 24
// hourly samples). It is evaluated by replaying the history synopsis over
// the trailing window, so it needs no extra state on the update path and
// no extra transmissions from the source.
type WindowQuery struct {
	// ID names the windowed query.
	ID string
	// SourceID is the target source object.
	SourceID string
	// Func is the aggregate applied over the window.
	Func AggFunc
	// N is the window length in readings.
	N int
	// Delta is the per-reading precision width of the underlying value
	// query; each replayed point is within Delta of the source value, so
	// avg/min/max inherit the same bound (sum inherits N·Delta).
	Delta float64
	// F is the optional smoothing factor.
	F float64
	// Model names the stream model.
	Model string
}

// Validate checks the windowed query.
func (q WindowQuery) Validate() error {
	if q.ID == "" {
		return fmt.Errorf("dsms: window query ID is empty")
	}
	if q.SourceID == "" {
		return fmt.Errorf("dsms: window query %s has empty source", q.ID)
	}
	switch q.Func {
	case AggAvg, AggSum, AggMin, AggMax:
	default:
		return fmt.Errorf("dsms: window query %s has unknown function %q", q.ID, q.Func)
	}
	if q.N < 1 {
		return fmt.Errorf("dsms: window query %s has window %d, want >= 1", q.ID, q.N)
	}
	if q.Delta <= 0 {
		return fmt.Errorf("dsms: window query %s has non-positive delta %v", q.ID, q.Delta)
	}
	if q.F < 0 {
		return fmt.Errorf("dsms: window query %s has negative F %v", q.ID, q.F)
	}
	return nil
}

// baseQueryID names the implicit per-reading value query under a
// windowed query.
func (q WindowQuery) baseQueryID() string { return q.ID + "/base" }

// RegisterWindow installs a windowed query: it registers the underlying
// per-reading value query, enables history on the source (the window is
// evaluated by replay), and records the window parameters. Like other
// registrations it must precede the source's first transmission.
func (s *Server) RegisterWindow(q WindowQuery) error {
	if err := q.Validate(); err != nil {
		return err
	}
	s.winMu.Lock()
	defer s.winMu.Unlock()
	if s.windows == nil {
		s.windows = make(map[string]WindowQuery)
	}
	if _, dup := s.windows[q.ID]; dup {
		return fmt.Errorf("dsms: duplicate window query id %s", q.ID)
	}
	base := stream.Query{
		ID:       q.baseQueryID(),
		SourceID: q.SourceID,
		Delta:    q.Delta,
		F:        q.F,
		Model:    q.Model,
	}
	// The namespaced base id can only exist from a prior install of this
	// same window query (e.g. recovered from a durable server's WAL):
	// adopt it instead of failing the re-install.
	if !s.HasQuery(base.ID) {
		if err := s.Register(base); err != nil {
			return fmt.Errorf("dsms: window query %s: %w", q.ID, err)
		}
	}
	if err := s.EnableHistory(q.SourceID); err != nil {
		// History may already be enabled for this source; that is fine.
		if !historyAlreadyEnabled(err) {
			s.dropQuery(base.ID)
			return fmt.Errorf("dsms: window query %s: %w", q.ID, err)
		}
	}
	s.windows[q.ID] = q
	return nil
}

func historyAlreadyEnabled(err error) bool {
	return err != nil && strings.Contains(err.Error(), "history already enabled")
}

// AnswerWindow evaluates the windowed query ending at reading index seq:
// the trailing N answers are replayed from history and aggregated. The
// window is clamped at the stream start.
func (s *Server) AnswerWindow(queryID string, seq int) (float64, error) {
	s.winMu.Lock()
	q, ok := s.windows[queryID]
	s.winMu.Unlock()
	if !ok {
		return 0, fmt.Errorf("dsms: unknown window query %s", queryID)
	}
	from := seq - q.N + 1
	// Clamp at the history's first sequence.
	s.mu.RLock()
	st := s.sources[q.SourceID]
	s.mu.RUnlock()
	if st == nil {
		return 0, fmt.Errorf("dsms: window query %s: source %s has no history yet", queryID, q.SourceID)
	}
	st.mu.Lock()
	if st.history == nil || st.history.Len() == 0 {
		st.mu.Unlock()
		return 0, fmt.Errorf("dsms: window query %s: source %s has no history yet", queryID, q.SourceID)
	}
	if first := st.history.FirstSeq(); from < first {
		from = first
	}
	st.mu.Unlock()
	rec, err := s.HistoryRange(q.baseQueryID(), from, seq)
	if err != nil {
		return 0, err
	}
	vals := make([]float64, len(rec))
	for i, r := range rec {
		if len(r.Values) != 1 {
			return 0, fmt.Errorf("dsms: window query %s: source is not single-attribute", queryID)
		}
		vals[i] = r.Values[0]
	}
	return window.Apply(string(q.Func), vals)
}

// WindowIDs returns the registered windowed query ids, sorted.
func (s *Server) WindowIDs() []string {
	s.winMu.Lock()
	defer s.winMu.Unlock()
	out := make([]string, 0, len(s.windows))
	for id := range s.windows {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
