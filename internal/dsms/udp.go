// Connectionless UDP transport. DKF updates are small, idempotent by
// sequence number, and loss-tolerant by design — a lost update is just
// another suppressed step the server's prediction covers until the next
// transmission — so the datagram mode keeps no connection state at all:
// every datagram is the 6-byte v2 preamble plus one or more standard
// frames, parsed statelessly and handed to the shard ingest engine,
// whose seq-dedup makes duplicated and reordered datagrams harmless.
//
// What is and is not ordered: per-source apply order is guaranteed (one
// shard worker owns each source and drops anything at or below the last
// applied seq); datagram arrival order is not, and cross-source order
// never was. A source must use one transport at a time — interleaving
// TCP and UDP for the same source id is a misconfiguration (two
// producers would race the dedup boundary).
package dsms

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms/engine"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/stream"
	"streamkf/internal/telemetry"
	"streamkf/internal/trace"
)

// UDPServerOptions configures a UDPServer.
type UDPServerOptions struct {
	// MaxDatagram caps accepted datagram sizes. 0 selects 64 KiB (the
	// UDP maximum); oversize datagrams are truncated by the kernel and
	// then rejected as malformed.
	MaxDatagram int
	// ReadBuffer asks the kernel for this SO_RCVBUF. 0 selects 4 MiB —
	// the socket buffer is the only queue between a burst and the
	// engine's rings, so it is sized generously.
	ReadBuffer int
	// Engine tunes the ingest engine when the server does not have one
	// attached yet; ignored otherwise.
	Engine EngineOptions
}

// UDPServer accepts DKF datagrams on one socket and feeds the server's
// shard ingest engine. One reader goroutine owns the socket, a reusable
// decode state, and one engine producer lane; the steady-state receive
// path (read, parse, intern, hand to ring) allocates nothing.
type UDPServer struct {
	server *Server
	eng    *engine.Engine
	prod   *engine.Producer
	conn   *net.UDPConn
	ins    *engineInstruments

	// Reader-goroutine state. interned maps source-id bytes to their
	// one canonical string: a datagram socket multiplexes every source,
	// so the stream Reader's single-entry cache would thrash.
	buf      []byte
	u        core.Update
	interned map[string]string
	internFn func([]byte) string
	reply    []byte

	mu     sync.Mutex
	closed bool
}

// NewUDPServer binds addr ("host:port", port 0 picks a free one) and
// attaches to server's ingest engine, starting one with opts.Engine if
// none is attached yet. Call Serve to start receiving.
func NewUDPServer(server *Server, addr string, opts UDPServerOptions) (*UDPServer, error) {
	if opts.MaxDatagram <= 0 {
		opts.MaxDatagram = 64 << 10
	}
	if opts.ReadBuffer <= 0 {
		opts.ReadBuffer = 4 << 20
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp resolve: %w", err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp listen: %w", err)
	}
	// Best effort: some kernels clamp SO_RCVBUF below the request.
	_ = conn.SetReadBuffer(opts.ReadBuffer)
	eng := server.StartEngine(opts.Engine)
	t := &UDPServer{
		server:   server,
		eng:      eng,
		prod:     eng.Producer(),
		conn:     conn,
		ins:      server.engIns,
		buf:      make([]byte, opts.MaxDatagram),
		interned: make(map[string]string),
	}
	t.internFn = t.intern
	return t, nil
}

// Addr returns the bound UDP address.
func (t *UDPServer) Addr() net.Addr { return t.conn.LocalAddr() }

// Serve receives datagrams until Close. It returns nil after Close and
// the socket error otherwise. The engine is shared and stays running —
// shutting it down is its owner's call (Server.Engine().Close()).
func (t *UDPServer) Serve() error {
	for {
		n, addr, err := t.conn.ReadFromUDPAddrPort(t.buf)
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("dsms: udp read: %w", err)
		}
		t.processDatagram(t.buf[:n], addr)
	}
}

// Close stops Serve. Updates already handed to the engine still drain.
func (t *UDPServer) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	return t.conn.Close()
}

// intern returns the canonical string for a source-id byte slice. The
// map lookup keyed by string(b) does not allocate; only the first
// sighting of a source id does.
func (t *UDPServer) intern(b []byte) string {
	if s, ok := t.interned[string(b)]; ok {
		return s
	}
	s := string(b)
	t.interned[s] = s
	return s
}

// processDatagram parses one datagram and routes its frames: updates go
// to the owning shard's ring (TryOffer — under overload the ring sheds
// rather than blocking the socket), hellos get an install reply when
// addr is valid. Unknown tags are skipped for forward compatibility.
// Factored off the socket loop so tests and alloc gates can drive it
// directly.
func (t *UDPServer) processDatagram(p []byte, addr netip.AddrPort) {
	t.ins.datagramsRx.Inc()
	_, rest, err := wire.CheckPreamble(p)
	if err != nil {
		t.ins.datagramsBad.Inc()
		t.server.tel.countWireError(err)
		return
	}
	for len(rest) > 0 {
		tag, payload, next, err := wire.NextFrame(rest, len(t.buf))
		if err != nil {
			t.ins.datagramsBad.Inc()
			t.server.tel.countWireError(err)
			return
		}
		t.ins.framesRx.Inc()
		t.server.tel.rx(tag, len(payload)+5)
		switch tag {
		case wire.TagUpdate:
			if err := wire.DecodeUpdateInto(payload, &t.u, t.internFn); err != nil {
				t.ins.datagramsBad.Inc()
				t.server.tel.countWireError(err)
				return
			}
			t.prod.TryOffer(t.eng.ShardFor(t.u.SourceID), &t.u)
		case wire.TagHello:
			t.handleHello(payload, addr)
		}
		rest = next
	}
}

// handleHello answers a handshake datagram with an install (or error)
// datagram. Handshakes are rare, so this path may allocate.
func (t *UDPServer) handleHello(payload []byte, addr netip.AddrPort) {
	if !addr.IsValid() {
		return
	}
	id, err := wire.DecodeHello(payload)
	if err != nil {
		t.ins.datagramsBad.Inc()
		return
	}
	t.reply = wire.AppendPreamble(t.reply[:0], wire.Version, 0)
	cfg, err := t.server.InstallFor(id)
	if err != nil {
		if t.reply, err = wire.AppendErrorFrame(t.reply, err.Error()); err != nil {
			return
		}
	} else {
		inst := wire.Install{
			SourceID:  cfg.SourceID,
			Model:     cfg.Model.Name,
			Delta:     cfg.Delta,
			F:         cfg.F,
			ResumeSeq: t.server.ResumeSeq(id),
		}
		if t.reply, err = wire.AppendInstallFrame(t.reply, inst); err != nil {
			return
		}
	}
	_, _ = t.conn.WriteToUDPAddrPort(t.reply, addr)
}

// UDPDialOptions configures DialSourceUDP.
type UDPDialOptions struct {
	// HandshakeTimeout bounds each hello → install attempt. 0 selects
	// 500ms.
	HandshakeTimeout time.Duration
	// HandshakeRetries is how many hello datagrams to send before
	// giving up (the handshake is the one loss-sensitive exchange, so
	// it is retried; everything after is fire-and-forget). 0 selects 5.
	HandshakeRetries int
	// BootstrapCopies duplicates the bootstrap update datagram: the
	// bootstrap is the only update whose loss stalls the stream until a
	// retransmission, and the server's dedup drops the extras for free.
	// 0 selects 3.
	BootstrapCopies int
	// Telemetry, as in DialOptions.
	Telemetry *telemetry.Registry
	// Trace attaches a local flight recorder to the agent's source
	// node. Decision evidence does not cross the wire on UDP.
	Trace       bool
	TraceRing   int
	TraceSample int
}

func (o UDPDialOptions) withDefaults() UDPDialOptions {
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 500 * time.Millisecond
	}
	if o.HandshakeRetries <= 0 {
		o.HandshakeRetries = 5
	}
	if o.BootstrapCopies <= 0 {
		o.BootstrapCopies = 3
	}
	return o
}

// UDPAgent is the dial-side datagram agent: the same mirror-filter
// Agent as the TCP path, sending each transmitted update as one
// self-describing datagram on a connected UDP socket. There are no
// acks and no resend queue — the DKF protocol's loss tolerance is the
// reliability layer.
type UDPAgent struct {
	conn     *net.UDPConn
	agent    *Agent
	inst     wire.Install
	sourceID string
	copies   int
	scratch  []byte
	tracer   *trace.Recorder
	ins      *AgentInstruments
}

// DialSourceUDP runs the retried hello → install handshake against the
// server at addr and returns a datagram agent for sourceID, resolving
// the installed model from catalog.
//
// If the install reply carries ResumeSeq >= 0 the server already holds
// filter state for this source (recovered from durable storage); a
// fresh agent cannot resume a mirror it never ran, so it must restart
// the stream with a bootstrap — which the server's dedup drops while
// its seq is not newer than the recovered state. Restarting sources
// against a durable server should resume where they left off or use a
// fresh source id; see DESIGN.md §14.
func DialSourceUDP(addr, sourceID string, catalog *Catalog, opts UDPDialOptions) (*UDPAgent, error) {
	opts = opts.withDefaults()
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp resolve: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, uaddr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp dial: %w", err)
	}
	hello := wire.AppendPreamble(nil, wire.Version, 0)
	if hello, err = wire.AppendHelloFrame(hello, sourceID); err != nil {
		conn.Close()
		return nil, err
	}
	var inst wire.Install
	got := false
	buf := make([]byte, 64<<10)
attempts:
	for i := 0; i < opts.HandshakeRetries; i++ {
		if _, err := conn.Write(hello); err != nil {
			conn.Close()
			return nil, fmt.Errorf("dsms: udp hello: %w", err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(opts.HandshakeTimeout))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					continue attempts
				}
				conn.Close()
				return nil, fmt.Errorf("dsms: udp handshake: %w", err)
			}
			_, rest, err := wire.CheckPreamble(buf[:n])
			if err != nil {
				continue // stray datagram; keep waiting
			}
			tag, payload, _, err := wire.NextFrame(rest, 0)
			if err != nil {
				continue
			}
			switch tag {
			case wire.TagError:
				msg, _ := wire.DecodeError(payload)
				conn.Close()
				return nil, fmt.Errorf("dsms: server error: %s", msg)
			case wire.TagInstall:
				if inst, err = wire.DecodeInstall(payload); err != nil {
					continue
				}
				got = true
				break attempts
			}
		}
	}
	if !got {
		conn.Close()
		return nil, fmt.Errorf("dsms: udp handshake: no install reply from %s after %d attempts", addr, opts.HandshakeRetries)
	}
	_ = conn.SetReadDeadline(time.Time{})
	m, err := catalog.Resolve(inst.Model)
	if err != nil {
		conn.Close()
		return nil, err
	}
	ua := &UDPAgent{conn: conn, inst: inst, sourceID: sourceID, copies: opts.BootstrapCopies}
	cfg := core.Config{SourceID: sourceID, Model: m, Delta: inst.Delta, F: inst.F}
	agent, err := NewAgent(cfg, core.TransportFunc(ua.send))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if opts.Telemetry != nil {
		ua.ins = NewAgentInstruments(opts.Telemetry, sourceID)
		agent.Instrument(ua.ins)
	}
	if opts.Trace {
		ua.tracer = trace.New(trace.Options{RingSize: opts.TraceRing, Sample: opts.TraceSample})
		agent.SetTrace(ua.tracer)
	}
	ua.agent = agent
	return ua, nil
}

// send implements core.Transport: one datagram per transmitted update,
// encoded into a reused scratch buffer (steady state allocates
// nothing). Bootstrap datagrams are duplicated BootstrapCopies times.
func (ua *UDPAgent) send(u core.Update) error {
	var err error
	ua.scratch = wire.AppendPreamble(ua.scratch[:0], wire.Version, 0)
	if ua.scratch, err = wire.AppendUpdateFrame(ua.scratch, &u); err != nil {
		return err
	}
	n := 1
	if u.Bootstrap {
		n = ua.copies
	}
	for i := 0; i < n; i++ {
		if _, err := ua.conn.Write(ua.scratch); err != nil {
			return fmt.Errorf("dsms: udp send: %w", err)
		}
	}
	return nil
}

// Offer feeds one reading to the mirror filter, transmitting iff the
// suppression protocol demands it.
func (ua *UDPAgent) Offer(r stream.Reading) (sent bool, err error) {
	return ua.agent.Offer(r)
}

// Drain is a no-op on UDP — there are no acks to wait for. It exists so
// transport-generic callers can treat both agent kinds alike.
func (ua *UDPAgent) Drain() error { return nil }

// Stats reports the mirror node's offer/send statistics.
func (ua *UDPAgent) Stats() core.SourceStats { return ua.agent.Stats() }

// Install returns the decoded install reply from the handshake.
func (ua *UDPAgent) Install() wire.Install { return ua.inst }

// Tracer returns the local flight recorder (nil unless Trace was set).
func (ua *UDPAgent) Tracer() *trace.Recorder { return ua.tracer }

// TraceNegotiated reports whether decision evidence crosses the wire —
// never on UDP.
func (ua *UDPAgent) TraceNegotiated() bool { return false }

// Close releases the socket.
func (ua *UDPAgent) Close() error { return ua.conn.Close() }

// UDPBatcher multiplexes many sources' updates over one connected UDP
// socket, packing update frames into shared datagrams — the 100k-source
// fan-in shape, where per-source sockets and per-update syscalls are
// exactly the overhead being amortized away. Safe for concurrent use;
// a datagram is flushed when it reaches FlushBytes or on Flush.
type UDPBatcher struct {
	mu         sync.Mutex
	conn       *net.UDPConn
	buf        []byte
	flushBytes int
}

// DialUDPBatcher connects a batching sender to the server at addr.
// flushBytes caps the datagram payload before an automatic flush; <= 0
// selects 1200 (conservatively below common path MTUs).
func DialUDPBatcher(addr string, flushBytes int) (*UDPBatcher, error) {
	if flushBytes <= 0 {
		flushBytes = 1200
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp resolve: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, uaddr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp dial: %w", err)
	}
	return &UDPBatcher{conn: conn, flushBytes: flushBytes}, nil
}

// Send appends u's frame to the pending datagram, flushing it first if
// full. Implements core.Transport, so per-source Agents can share one
// batcher: NewAgent(cfg, batcher).
func (b *UDPBatcher) Send(u core.Update) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.buf) >= b.flushBytes {
		if err := b.flushLocked(); err != nil {
			return err
		}
	}
	if len(b.buf) == 0 {
		b.buf = wire.AppendPreamble(b.buf, wire.Version, 0)
	}
	var err error
	if b.buf, err = wire.AppendUpdateFrame(b.buf, &u); err != nil {
		return err
	}
	return nil
}

// Flush transmits the pending datagram, if any.
func (b *UDPBatcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

func (b *UDPBatcher) flushLocked() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.conn.Write(b.buf)
	b.buf = b.buf[:0]
	if err != nil {
		return fmt.Errorf("dsms: udp send: %w", err)
	}
	return nil
}

// Close flushes and releases the socket.
func (b *UDPBatcher) Close() error {
	ferr := b.Flush()
	cerr := b.conn.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
