// Connectionless UDP transport. DKF updates are small, idempotent by
// sequence number, and loss-tolerant by design — a lost update is just
// another suppressed step the server's prediction covers until the next
// transmission — so the datagram mode keeps no connection state at all:
// every datagram is the 6-byte v2 preamble plus one or more standard
// frames, parsed statelessly and handed to the shard ingest engine,
// whose seq-dedup makes duplicated and reordered datagrams harmless.
//
// What is and is not ordered: per-source apply order is guaranteed (one
// shard worker owns each source and drops anything at or below the last
// applied seq); datagram arrival order is not, and cross-source order
// never was. A source must use one transport at a time — interleaving
// TCP and UDP for the same source id is a misconfiguration (two
// producers would race the dedup boundary).
package dsms

import (
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms/engine"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/stream"
	"streamkf/internal/telemetry"
	"streamkf/internal/trace"
)

// UDPServerOptions configures a UDPServer.
type UDPServerOptions struct {
	// MaxDatagram caps accepted datagram sizes. 0 selects 64 KiB (the
	// UDP maximum); oversize datagrams are truncated by the kernel and
	// then rejected as malformed.
	MaxDatagram int
	// ReadBuffer asks the kernel for this SO_RCVBUF. 0 selects 4 MiB —
	// the socket buffer is the only queue between a burst and the
	// engine's rings, so it is sized generously.
	ReadBuffer int
	// Lanes is how many reader goroutines share the socket. Each lane
	// owns its own receive arena, decode state, and engine producer, so
	// lanes never synchronize with each other — the kernel serializes
	// the dequeue and lanes overlap the parse/route work. 0 selects
	// min(4, GOMAXPROCS); 1 reproduces the single-reader layout.
	Lanes int
	// RxBatch caps how many datagrams one receive syscall may drain
	// (recvmmsg on Linux). 0 selects 32. Platforms without a batched
	// receive read one datagram per call regardless.
	RxBatch int
	// Engine tunes the ingest engine when the server does not have one
	// attached yet; ignored otherwise.
	Engine EngineOptions
}

func (o UDPServerOptions) withDefaults() UDPServerOptions {
	if o.MaxDatagram <= 0 {
		o.MaxDatagram = 64 << 10
	}
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 4 << 20
	}
	if o.Lanes <= 0 {
		o.Lanes = runtime.GOMAXPROCS(0)
		if o.Lanes > 4 {
			o.Lanes = 4
		}
	}
	if o.RxBatch <= 0 {
		o.RxBatch = 32
	}
	if !mmsgAvailable {
		// The portable read path returns one datagram per call; a batch
		// arena deeper than 1 would just be dead memory.
		o.RxBatch = 1
	}
	return o
}

// UDPServer accepts DKF datagrams on one socket and feeds the server's
// shard ingest engine through N reader lanes. Each lane drains whole
// batches per syscall where the platform allows (recvmmsg on Linux) and
// owns every piece of mutable receive state — buffer arena, decode
// scratch, intern map, engine producer — so the steady-state receive
// path (read batch, parse, intern, hand to ring) allocates nothing and
// takes no lane-to-lane lock.
type UDPServer struct {
	server *Server
	eng    *engine.Engine
	conn   *net.UDPConn
	lanes  []*rxLane

	mu     sync.Mutex
	closed bool
}

// rxLane is one reader goroutine's world. interned maps source-id bytes
// to their one canonical string: a datagram socket multiplexes every
// source, so the stream Reader's single-entry cache would thrash.
type rxLane struct {
	t        *UDPServer
	id       int
	rx       *laneRx
	prod     *engine.Producer
	ins      *engineInstruments
	lane     *laneInstruments
	maxDgram int

	u        core.Update
	interned map[string]string
	internFn func([]byte) string
	reply    []byte
}

// NewUDPServer binds addr ("host:port", port 0 picks a free one) and
// attaches to server's ingest engine, starting one with opts.Engine if
// none is attached yet. Call Serve to start receiving.
func NewUDPServer(server *Server, addr string, opts UDPServerOptions) (*UDPServer, error) {
	opts = opts.withDefaults()
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp resolve: %w", err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp listen: %w", err)
	}
	// Best effort: some kernels clamp SO_RCVBUF below the request.
	_ = conn.SetReadBuffer(opts.ReadBuffer)
	eng := server.StartEngine(opts.Engine)
	t := &UDPServer{server: server, eng: eng, conn: conn}
	t.lanes = make([]*rxLane, opts.Lanes)
	for i := range t.lanes {
		rx, err := newLaneRx(conn, opts.RxBatch, opts.MaxDatagram)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("dsms: udp lane %d: %w", i, err)
		}
		ln := &rxLane{
			t:        t,
			id:       i,
			rx:       rx,
			prod:     eng.Producer(),
			ins:      server.engIns,
			lane:     server.laneInstruments(i),
			maxDgram: opts.MaxDatagram,
			interned: make(map[string]string),
		}
		ln.internFn = ln.intern
		t.lanes[i] = ln
	}
	return t, nil
}

// Addr returns the bound UDP address.
func (t *UDPServer) Addr() net.Addr { return t.conn.LocalAddr() }

// Lanes returns how many reader lanes Serve runs.
func (t *UDPServer) Lanes() int { return len(t.lanes) }

// Serve receives datagrams until Close, running lane 0 on the calling
// goroutine and the rest on their own. It returns nil after Close and
// the first socket error otherwise (any lane's failure closes the
// socket, releasing the other lanes' blocked reads). The engine is
// shared and stays running — shutting it down is its owner's call
// (Server.Engine().Close()).
func (t *UDPServer) Serve() error {
	errs := make([]error, len(t.lanes))
	var wg sync.WaitGroup
	for i := 1; i < len(t.lanes); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = t.serveLane(t.lanes[i])
		}(i)
	}
	errs[0] = t.serveLane(t.lanes[0])
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (t *UDPServer) serveLane(ln *rxLane) error {
	err := ln.serve()
	if err != nil {
		_ = t.Close()
	}
	return err
}

// serve is one lane's receive loop: drain a batch, route each datagram.
func (ln *rxLane) serve() error {
	for {
		n, err := ln.rx.read()
		if err != nil {
			ln.t.mu.Lock()
			closed := ln.t.closed
			ln.t.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("dsms: udp read: %w", err)
		}
		ln.lane.batch.Observe(int64(n))
		for i := 0; i < n; i++ {
			ln.processDatagram(ln.rx.msg(i), ln.rx.addr(i))
		}
	}
}

// Close stops Serve. Updates already handed to the engine still drain.
func (t *UDPServer) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	return t.conn.Close()
}

// intern returns the canonical string for a source-id byte slice. The
// map lookup keyed by string(b) does not allocate; only the first
// sighting of a source id (per lane) does.
func (ln *rxLane) intern(b []byte) string {
	if s, ok := ln.interned[string(b)]; ok {
		return s
	}
	s := string(b)
	ln.interned[s] = s
	return s
}

// processDatagram drives lane 0's parser directly — the entry point
// tests and alloc gates use. Not safe concurrently with Serve.
func (t *UDPServer) processDatagram(p []byte, addr netip.AddrPort) {
	t.lanes[0].processDatagram(p, addr)
}

// processDatagram parses one datagram and routes its frames: updates go
// to the owning shard's ring (TryOffer — under overload the ring sheds
// rather than blocking the socket), hellos get an install reply when
// addr is valid. Unknown tags are skipped for forward compatibility.
func (ln *rxLane) processDatagram(p []byte, addr netip.AddrPort) {
	ln.ins.datagramsRx.Inc()
	ln.lane.rx.Inc()
	_, rest, err := wire.CheckPreamble(p)
	if err != nil {
		ln.ins.datagramsBad.Inc()
		ln.t.server.tel.countWireError(err)
		return
	}
	for len(rest) > 0 {
		tag, payload, next, err := wire.NextFrame(rest, ln.maxDgram)
		if err != nil {
			ln.ins.datagramsBad.Inc()
			ln.t.server.tel.countWireError(err)
			return
		}
		ln.ins.framesRx.Inc()
		ln.t.server.tel.rx(tag, len(payload)+5)
		switch tag {
		case wire.TagUpdate:
			if err := wire.DecodeUpdateInto(payload, &ln.u, ln.internFn); err != nil {
				ln.ins.datagramsBad.Inc()
				ln.t.server.tel.countWireError(err)
				return
			}
			ln.prod.TryOffer(ln.t.eng.ShardFor(ln.u.SourceID), &ln.u)
		case wire.TagHello:
			ln.handleHello(payload, addr)
		}
		rest = next
	}
}

// handleHello answers a handshake datagram with an install (or error)
// datagram. Handshakes are rare, so this path may allocate. The reply
// buffer is lane-owned; the socket write itself is thread-safe.
func (ln *rxLane) handleHello(payload []byte, addr netip.AddrPort) {
	if !addr.IsValid() {
		return
	}
	id, err := wire.DecodeHello(payload)
	if err != nil {
		ln.ins.datagramsBad.Inc()
		return
	}
	ln.reply = wire.AppendPreamble(ln.reply[:0], wire.Version, 0)
	cfg, err := ln.t.server.InstallFor(id)
	if err != nil {
		if ln.reply, err = wire.AppendErrorFrame(ln.reply, err.Error()); err != nil {
			return
		}
	} else {
		inst := wire.Install{
			SourceID:  cfg.SourceID,
			Model:     cfg.Model.Name,
			Delta:     cfg.Delta,
			F:         cfg.F,
			ResumeSeq: ln.t.server.ResumeSeq(id),
		}
		if ln.reply, err = wire.AppendInstallFrame(ln.reply, inst); err != nil {
			return
		}
	}
	_, _ = ln.t.conn.WriteToUDPAddrPort(ln.reply, addr)
}

// UDPDialOptions configures DialSourceUDP.
type UDPDialOptions struct {
	// HandshakeTimeout bounds each hello → install attempt. 0 selects
	// 500ms.
	HandshakeTimeout time.Duration
	// HandshakeRetries is how many hello datagrams to send before
	// giving up (the handshake is the one loss-sensitive exchange, so
	// it is retried; everything after is fire-and-forget). 0 selects 5.
	HandshakeRetries int
	// BootstrapCopies duplicates the bootstrap update datagram: the
	// bootstrap is the only update whose loss stalls the stream until a
	// retransmission, and the server's dedup drops the extras for free.
	// 0 selects 3.
	BootstrapCopies int
	// Telemetry, as in DialOptions.
	Telemetry *telemetry.Registry
	// Trace attaches a local flight recorder to the agent's source
	// node. Decision evidence does not cross the wire on UDP.
	Trace       bool
	TraceRing   int
	TraceSample int
}

func (o UDPDialOptions) withDefaults() UDPDialOptions {
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 500 * time.Millisecond
	}
	if o.HandshakeRetries <= 0 {
		o.HandshakeRetries = 5
	}
	if o.BootstrapCopies <= 0 {
		o.BootstrapCopies = 3
	}
	return o
}

// UDPAgent is the dial-side datagram agent: the same mirror-filter
// Agent as the TCP path, sending each transmitted update as one
// self-describing datagram on a connected UDP socket. There are no
// acks and no resend queue — the DKF protocol's loss tolerance is the
// reliability layer.
type UDPAgent struct {
	conn     *net.UDPConn
	agent    *Agent
	inst     wire.Install
	sourceID string
	copies   int
	scratch  []byte
	tracer   *trace.Recorder
	ins      *AgentInstruments
}

// DialSourceUDP runs the retried hello → install handshake against the
// server at addr and returns a datagram agent for sourceID, resolving
// the installed model from catalog.
//
// If the install reply carries ResumeSeq >= 0 the server already holds
// filter state for this source (recovered from durable storage); a
// fresh agent cannot resume a mirror it never ran, so it must restart
// the stream with a bootstrap — which the server's dedup drops while
// its seq is not newer than the recovered state. Restarting sources
// against a durable server should resume where they left off or use a
// fresh source id; see DESIGN.md §14.
func DialSourceUDP(addr, sourceID string, catalog *Catalog, opts UDPDialOptions) (*UDPAgent, error) {
	opts = opts.withDefaults()
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp resolve: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, uaddr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp dial: %w", err)
	}
	hello := wire.AppendPreamble(nil, wire.Version, 0)
	if hello, err = wire.AppendHelloFrame(hello, sourceID); err != nil {
		conn.Close()
		return nil, err
	}
	var inst wire.Install
	got := false
	buf := make([]byte, 64<<10)
attempts:
	for i := 0; i < opts.HandshakeRetries; i++ {
		if _, err := conn.Write(hello); err != nil {
			conn.Close()
			return nil, fmt.Errorf("dsms: udp hello: %w", err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(opts.HandshakeTimeout))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					continue attempts
				}
				conn.Close()
				return nil, fmt.Errorf("dsms: udp handshake: %w", err)
			}
			_, rest, err := wire.CheckPreamble(buf[:n])
			if err != nil {
				continue // stray datagram; keep waiting
			}
			tag, payload, _, err := wire.NextFrame(rest, 0)
			if err != nil {
				continue
			}
			switch tag {
			case wire.TagError:
				msg, _ := wire.DecodeError(payload)
				conn.Close()
				return nil, fmt.Errorf("dsms: server error: %s", msg)
			case wire.TagInstall:
				if inst, err = wire.DecodeInstall(payload); err != nil {
					continue
				}
				got = true
				break attempts
			}
		}
	}
	if !got {
		conn.Close()
		return nil, fmt.Errorf("dsms: udp handshake: no install reply from %s after %d attempts", addr, opts.HandshakeRetries)
	}
	_ = conn.SetReadDeadline(time.Time{})
	m, err := catalog.Resolve(inst.Model)
	if err != nil {
		conn.Close()
		return nil, err
	}
	ua := &UDPAgent{conn: conn, inst: inst, sourceID: sourceID, copies: opts.BootstrapCopies}
	cfg := core.Config{SourceID: sourceID, Model: m, Delta: inst.Delta, F: inst.F}
	agent, err := NewAgent(cfg, core.TransportFunc(ua.send))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if opts.Telemetry != nil {
		ua.ins = NewAgentInstruments(opts.Telemetry, sourceID)
		agent.Instrument(ua.ins)
	}
	if opts.Trace {
		ua.tracer = trace.New(trace.Options{RingSize: opts.TraceRing, Sample: opts.TraceSample})
		agent.SetTrace(ua.tracer)
	}
	ua.agent = agent
	return ua, nil
}

// send implements core.Transport: one datagram per transmitted update,
// encoded into a reused scratch buffer (steady state allocates
// nothing). Bootstrap datagrams are duplicated BootstrapCopies times.
func (ua *UDPAgent) send(u core.Update) error {
	var err error
	ua.scratch = wire.AppendPreamble(ua.scratch[:0], wire.Version, 0)
	if ua.scratch, err = wire.AppendUpdateFrame(ua.scratch, &u); err != nil {
		return err
	}
	n := 1
	if u.Bootstrap {
		n = ua.copies
	}
	for i := 0; i < n; i++ {
		if _, err := ua.conn.Write(ua.scratch); err != nil {
			return fmt.Errorf("dsms: udp send: %w", err)
		}
	}
	return nil
}

// Offer feeds one reading to the mirror filter, transmitting iff the
// suppression protocol demands it.
func (ua *UDPAgent) Offer(r stream.Reading) (sent bool, err error) {
	return ua.agent.Offer(r)
}

// Drain is a no-op on UDP — there are no acks to wait for. It exists so
// transport-generic callers can treat both agent kinds alike.
func (ua *UDPAgent) Drain() error { return nil }

// Stats reports the mirror node's offer/send statistics.
func (ua *UDPAgent) Stats() core.SourceStats { return ua.agent.Stats() }

// Install returns the decoded install reply from the handshake.
func (ua *UDPAgent) Install() wire.Install { return ua.inst }

// Tracer returns the local flight recorder (nil unless Trace was set).
func (ua *UDPAgent) Tracer() *trace.Recorder { return ua.tracer }

// TraceNegotiated reports whether decision evidence crosses the wire —
// never on UDP.
func (ua *UDPAgent) TraceNegotiated() bool { return false }

// Close releases the socket.
func (ua *UDPAgent) Close() error { return ua.conn.Close() }

// UDPBatcher multiplexes many sources' updates over one connected UDP
// socket, packing update frames into shared datagrams — the 100k-source
// fan-in shape, where per-source sockets and per-update syscalls are
// exactly the overhead being amortized away. Sealed datagrams are
// additionally batched SendBatch at a time into one transmit syscall
// (sendmmsg on Linux). Safe for concurrent use; Flush transmits
// everything pending, sealed or not.
type UDPBatcher struct {
	mu         sync.Mutex
	conn       *net.UDPConn
	tx         *batchTx
	pend       [][]byte // pend[:npend] sealed; pend[npend] open; slots reused
	npend      int
	flushBytes int
	sendBatch  int
}

// UDPBatcherOptions configures DialUDPBatcherOpts.
type UDPBatcherOptions struct {
	// FlushBytes caps the datagram payload before the open datagram is
	// sealed; <= 0 selects 1200 (conservatively below common path
	// MTUs). Values below one frame (e.g. 1) seal after every update —
	// the one-update-per-datagram shape of the per-source UDPAgent.
	FlushBytes int
	// SendBatch is how many sealed datagrams accumulate before one
	// transmit syscall carries them all; <= 0 selects 16. 1 reproduces
	// the write-per-datagram behavior.
	SendBatch int
}

// DialUDPBatcher connects a batching sender to the server at addr.
// flushBytes is UDPBatcherOptions.FlushBytes; the send batch takes its
// default.
func DialUDPBatcher(addr string, flushBytes int) (*UDPBatcher, error) {
	return DialUDPBatcherOpts(addr, UDPBatcherOptions{FlushBytes: flushBytes})
}

// DialUDPBatcherOpts connects a batching sender to the server at addr.
func DialUDPBatcherOpts(addr string, opts UDPBatcherOptions) (*UDPBatcher, error) {
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = 1200
	}
	if opts.SendBatch <= 0 {
		opts.SendBatch = 16
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp resolve: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, uaddr)
	if err != nil {
		return nil, fmt.Errorf("dsms: udp dial: %w", err)
	}
	tx, err := newBatchTx(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dsms: udp dial: %w", err)
	}
	return &UDPBatcher{conn: conn, tx: tx, flushBytes: opts.FlushBytes, sendBatch: opts.SendBatch}, nil
}

// curSlot returns the open datagram's slot, growing the slot table on
// first use. Slot backing arrays are retained across transmits, so the
// steady state allocates nothing.
func (b *UDPBatcher) curSlot() *[]byte {
	for len(b.pend) <= b.npend {
		b.pend = append(b.pend, nil)
	}
	return &b.pend[b.npend]
}

// Send appends u's frame to the open datagram, sealing it first if
// full. Implements core.Transport, so per-source Agents can share one
// batcher: NewAgent(cfg, batcher).
func (b *UDPBatcher) Send(u core.Update) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.curSlot()
	if len(*cur) >= b.flushBytes {
		if err := b.sealLocked(); err != nil {
			return err
		}
		cur = b.curSlot()
	}
	if len(*cur) == 0 {
		*cur = wire.AppendPreamble(*cur, wire.Version, 0)
	}
	var err error
	if *cur, err = wire.AppendUpdateFrame(*cur, &u); err != nil {
		return err
	}
	return nil
}

// sealLocked closes the open datagram and transmits once sendBatch
// datagrams are sealed.
func (b *UDPBatcher) sealLocked() error {
	if b.npend < len(b.pend) && len(b.pend[b.npend]) > 0 {
		b.npend++
	}
	if b.npend >= b.sendBatch {
		return b.transmitLocked()
	}
	return nil
}

// transmitLocked hands every sealed datagram to one batched send.
func (b *UDPBatcher) transmitLocked() error {
	if b.npend == 0 {
		return nil
	}
	pkts := b.pend[:b.npend]
	err := b.tx.sendAll(pkts)
	for i := range pkts {
		pkts[i] = pkts[i][:0]
	}
	b.npend = 0
	if err != nil {
		return fmt.Errorf("dsms: udp send: %w", err)
	}
	return nil
}

// Flush transmits everything pending: the open datagram is sealed and
// the whole sealed set goes out.
func (b *UDPBatcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.npend < len(b.pend) && len(b.pend[b.npend]) > 0 {
		b.npend++
	}
	return b.transmitLocked()
}

// Close flushes and releases the socket.
func (b *UDPBatcher) Close() error {
	ferr := b.Flush()
	cerr := b.conn.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
