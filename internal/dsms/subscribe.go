package dsms

import (
	"fmt"
	"sync"
)

// Notification is pushed to subscribers when a query's answer refreshes
// (i.e. when an update from one of its sources arrives).
type Notification struct {
	QueryID string
	Seq     int
	Values  []float64
}

// subscription is one registered listener.
type subscription struct {
	queryID string
	ch      chan Notification
}

// subscriptions is the server's push registry.
type subscriptions struct {
	mu   sync.Mutex
	subs map[int]*subscription
	next int
	// bySource maps source id -> subscription ids to notify.
	bySource map[string][]int
}

// Subscribe returns a channel that receives the query's fresh answer
// whenever one of its sources transmits an update. The channel is
// buffered; if the subscriber falls behind, intermediate notifications
// are dropped (the newest answer always supersedes older ones, so a slow
// reader only ever misses superseded values). Cancel releases the
// subscription and closes the channel.
func (s *Server) Subscribe(queryID string, buffer int) (ch <-chan Notification, cancel func(), err error) {
	if buffer < 1 {
		buffer = 1
	}
	sources, err := s.querySources(queryID)
	if err != nil {
		return nil, nil, fmt.Errorf("dsms: subscribe: %w", err)
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subs == nil {
		s.subs = make(map[int]*subscription)
		s.subsBySource = make(map[string][]int)
	}
	id := s.subNext
	s.subNext++
	sub := &subscription{queryID: queryID, ch: make(chan Notification, buffer)}
	s.subs[id] = sub
	s.subCount.Add(1)
	for _, src := range sources {
		s.subsBySource[src] = append(s.subsBySource[src], id)
	}
	cancel = func() {
		s.subMu.Lock()
		defer s.subMu.Unlock()
		if cur, ok := s.subs[id]; ok {
			delete(s.subs, id)
			s.subCount.Add(-1)
			close(cur.ch)
		}
	}
	return sub.ch, cancel, nil
}

// notifySubscribers pushes fresh answers for every subscription touched
// by an update from sourceID. Called outside the server lock.
func (s *Server) notifySubscribers(sourceID string, seq int) {
	if s.subCount.Load() == 0 {
		// No subscriptions anywhere: one atomic load instead of a lock
		// and map probe per applied update.
		return
	}
	s.subMu.Lock()
	ids := append([]int(nil), s.subsBySource[sourceID]...)
	s.subMu.Unlock()
	for _, id := range ids {
		s.subMu.Lock()
		sub, ok := s.subs[id]
		s.subMu.Unlock()
		if !ok {
			continue
		}
		value, err := s.queryValueVector(sub.queryID, seq)
		if err != nil {
			continue
		}
		n := Notification{QueryID: sub.queryID, Seq: seq, Values: value}
		// Non-blocking send with drop-oldest semantics: stale answers
		// are superseded by this one anyway.
		s.subMu.Lock()
		if _, stillOpen := s.subs[id]; stillOpen {
			select {
			case sub.ch <- n:
			default:
				select {
				case <-sub.ch:
				default:
				}
				select {
				case sub.ch <- n:
				default:
				}
			}
		}
		s.subMu.Unlock()
	}
}

// queryValueVector answers a value query as a vector or an aggregate as
// a one-element vector.
func (s *Server) queryValueVector(queryID string, seq int) ([]float64, error) {
	if vals, err := s.Answer(queryID, seq); err == nil {
		return vals, nil
	}
	v, err := s.AnswerAggregate(queryID, seq)
	if err != nil {
		return nil, err
	}
	return []float64{v}, nil
}
