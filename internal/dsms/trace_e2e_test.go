package dsms

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"streamkf/internal/gen"
	"streamkf/internal/stream"
	"streamkf/internal/trace"
)

// traceKinds collects the set of kinds present in a trail.
func traceKinds(events []trace.EventView) map[string]bool {
	out := make(map[string]bool)
	for _, e := range events {
		out[e.Kind] = true
	}
	return out
}

// TestTraceE2EChain is the tentpole acceptance test: a traced source
// streams over TCP into a durable server, one reading violates δ, and
// the flight recorders on both ends must show the full causal chain —
// smooth, predict, decision, wire tx/rx, apply, WAL append, answer —
// stitched together by the trace id the wire frame carried, with the
// δ-violating reading standing out in the divergence audit.
func TestTraceE2EChain(t *testing.T) {
	const n, spikeAt, spike = 120, 100, 500.0
	catalog := testCatalog()
	s, err := Open(catalog, t.TempDir(), DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnableTracing(trace.Options{})
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 1, F: 10, Model: "linear"})
	ts := startServer(t, s)
	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	agent, err := DialSourceOptions(ts.Addr(), "walk", catalog, DialOptions{Telemetry: s.Telemetry(), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if !agent.wireTrace {
		t.Fatal("tracing server did not advertise the trace feature")
	}

	// A noiseless ramp the linear model locks onto, with one huge spike:
	// after lock-on readings suppress, the spike must transmit.
	data := gen.Ramp(n, 0, 2, 0, 1)
	data[spikeAt].Values[0] += spike
	spikeSeq := int64(data[spikeAt].Seq)
	for _, r := range data {
		if _, err := agent.Offer(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Answer("q1", data[n-1].Seq); err != nil {
		t.Fatal(err)
	}

	// Source side: the agent recorder holds the local half of the chain.
	rec := agent.Tracer()
	if rec == nil {
		t.Fatal("traced dial did not attach a recorder")
	}
	srcKinds := traceKinds(eventViews(rec.Events()))
	for _, want := range []string{"smooth", "predict", "decision", "wire_tx"} {
		if !srcKinds[want] {
			t.Errorf("source trail missing kind %q (have %v)", want, srcKinds)
		}
	}
	var spikeTx *trace.EventView
	for _, e := range eventViews(rec.Events()) {
		if e.Kind == "wire_tx" && e.Seq == spikeSeq {
			ev := e
			spikeTx = &ev
		}
	}
	if spikeTx == nil {
		t.Fatalf("δ-violating reading %d was not transmitted", spikeSeq)
	}

	// Server side, over HTTP: the full decision trail for the stream.
	code, body := adminGet(t, admin.Addr(), "/tracez/stream/walk")
	if code != http.StatusOK {
		t.Fatalf("/tracez/stream/walk status %d: %s", code, body)
	}
	var st StreamTrace
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/tracez/stream/walk: %v\n%s", err, body)
	}
	if !st.Enabled || st.SourceID != "walk" || st.Delta != 1 {
		t.Fatalf("stream trace header wrong: %+v", st)
	}
	srvKinds := traceKinds(st.Events)
	for _, want := range []string{"wire_rx", "decision", "apply", "wal", "answer"} {
		if !srvKinds[want] {
			t.Errorf("server trail missing kind %q (have %v)", want, srvKinds)
		}
	}

	// The causal chain: every stage of the spike's journey shares the
	// trace id minted at the source and carried by the wire frame.
	chain := make(map[string]trace.EventView)
	for _, e := range st.Events {
		if e.Seq == spikeSeq && e.TraceID == spikeTx.TraceID {
			chain[e.Kind] = e
		}
	}
	for _, want := range []string{"wire_rx", "decision", "apply", "wal"} {
		if _, ok := chain[want]; !ok {
			t.Errorf("spike seq %d trace %d missing server-side %q event", spikeSeq, spikeTx.TraceID, want)
		}
	}
	if d := chain["decision"]; d.Decision != "send" || d.Residual <= d.Delta {
		t.Errorf("spike decision evidence wrong: %+v", d)
	}
	if a := chain["apply"]; a.Residual <= 1 {
		t.Errorf("spike apply recorded innovation %v, want > δ", a.Residual)
	}
	if w := chain["wal"]; w.Aux <= 0 {
		t.Errorf("wal event did not record appended bytes: %+v", w)
	}

	// Divergence audit: the spike is the worst innovation on record, and
	// no transmitted update landed at or under δ (the mirrors never
	// desynchronized).
	if st.Audit.Applies == 0 {
		t.Fatal("audit observed no applies")
	}
	if st.Audit.MaxSeq != spikeSeq {
		t.Errorf("audit max divergence at seq %d, want the spike at %d", st.Audit.MaxSeq, spikeSeq)
	}
	if st.Audit.MaxOverDelta <= 1 {
		t.Errorf("audit max/δ = %v, want > 1 for a δ-violating spike", st.Audit.MaxOverDelta)
	}
	if st.Audit.UnderDeltaSends != 0 {
		t.Errorf("audit counted %d under-δ sends on a healthy mirror", st.Audit.UnderDeltaSends)
	}

	// /tracez filters: decision=send on this source returns only send
	// decisions, including the spike's.
	code, body = adminGet(t, admin.Addr(), "/tracez?source=walk&kind=decision&decision=send&limit=200")
	if code != http.StatusOK {
		t.Fatalf("/tracez status %d", code)
	}
	var tz struct {
		Enabled bool         `json:"enabled"`
		Events  []TraceEntry `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &tz); err != nil {
		t.Fatalf("/tracez: %v\n%s", err, body)
	}
	if !tz.Enabled || len(tz.Events) == 0 {
		t.Fatalf("/tracez returned no send decisions: %s", body)
	}
	foundSpike := false
	for _, e := range tz.Events {
		if e.SourceID != "walk" || e.Kind != "decision" || e.Decision != "send" {
			t.Fatalf("/tracez filter leaked event %+v", e)
		}
		if e.Seq == spikeSeq {
			foundSpike = true
		}
	}
	if !foundSpike {
		t.Error("/tracez?decision=send does not include the spike")
	}
}

// eventViews converts recorder events to their JSON view shape so both
// ends of the chain are compared in the same vocabulary.
func eventViews(events []trace.Event) []trace.EventView {
	out := make([]trace.EventView, len(events))
	for i, e := range events {
		out[i] = e.View()
	}
	return out
}

// TestTraceCompatV2Peers pins wire compatibility in both directions: a
// tracing peer and a plain v2 peer must interoperate, with trace
// frames sent only when the server advertised the feature.
func TestTraceCompatV2Peers(t *testing.T) {
	catalog := testCatalog()

	t.Run("traced-agent-plain-server", func(t *testing.T) {
		s := NewServer(catalog)
		mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 0.5, Model: "linear"})
		ts := startServer(t, s)
		agent, err := DialSourceOptions(ts.Addr(), "walk", catalog, DialOptions{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		defer agent.Close()
		if agent.wireTrace {
			t.Fatal("agent negotiated trace frames against a non-tracing server")
		}
		if agent.Tracer() == nil {
			t.Fatal("local recorder must work even when the peer cannot accept trace frames")
		}
		if err := agent.Run(stream.NewSliceSource(gen.Ramp(200, 0, 2, 0.3, 7))); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats()[0]; st.Updates == 0 {
			t.Fatal("no updates applied")
		}
		if !traceKinds(eventViews(agent.Tracer().Events()))["decision"] {
			t.Error("local trail empty despite tracing enabled at the agent")
		}
	})

	t.Run("plain-agent-tracing-server", func(t *testing.T) {
		s := NewServer(catalog)
		s.EnableTracing(trace.Options{})
		mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 0.5, Model: "linear"})
		ts := startServer(t, s)
		agent, err := DialSource(ts.Addr(), "walk", catalog)
		if err != nil {
			t.Fatal(err)
		}
		defer agent.Close()
		if err := agent.Run(stream.NewSliceSource(gen.Ramp(200, 0, 2, 0.3, 7))); err != nil {
			t.Fatal(err)
		}
		st, err := s.TraceStream("walk")
		if err != nil {
			t.Fatal(err)
		}
		kinds := traceKinds(st.Events)
		if !kinds["apply"] || !kinds["wire_rx"] {
			t.Fatalf("tracing server recorded no applies from a plain agent: %v", kinds)
		}
		// No trace frames arrived, so the wire half of the chain is
		// anonymous: trace id 0, no decision evidence.
		for _, e := range st.Events {
			if e.Kind == "decision" {
				t.Fatalf("decision event without a trace frame: %+v", e)
			}
			if e.TraceID != 0 {
				t.Fatalf("nonzero trace id without trace frames: %+v", e)
			}
		}
		if st.Audit.Applies == 0 {
			t.Fatal("divergence audit must run without trace frames")
		}
	})
}

// TestTracezScrapeUnderLoad hammers /tracez and the per-stream trail
// while TCP agents stream in parallel — the recorder's seqlock contract
// under -race.
func TestTracezScrapeUnderLoad(t *testing.T) {
	catalog := testCatalog()
	s := NewServer(catalog)
	s.EnableTracing(trace.Options{RingSize: 64})
	const workers = 3
	ids := [workers]string{"walk-0", "walk-1", "walk-2"}
	for _, id := range ids {
		mustRegister(t, s, stream.Query{ID: "q-" + id, SourceID: id, Delta: 0.05, Model: "linear"})
	}
	ts := startServer(t, s)
	admin, err := ServeAdmin(s, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	done := make(chan struct{})
	var ingest sync.WaitGroup
	for i, id := range ids {
		agent, err := DialSourceOptions(ts.Addr(), id, catalog, DialOptions{Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		defer agent.Close()
		ingest.Add(1)
		go func(a *RemoteAgent, seed int64) {
			defer ingest.Done()
			if err := a.Run(stream.NewSliceSource(gen.Ramp(1500, 0, 2, 0.4, seed))); err != nil {
				t.Errorf("Run: %v", err)
			}
		}(agent, int64(11+i))
	}
	go func() {
		ingest.Wait()
		close(done)
	}()

	var wg sync.WaitGroup
	for _, path := range []string{"/tracez?limit=50", "/tracez/stream/walk-1"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if code, _ := adminGet(t, admin.Addr(), path); code != http.StatusOK {
					t.Errorf("GET %s: status %d", path, code)
					return
				}
			}
		}(path)
	}
	wg.Wait()
	<-done

	// After the dust settles every stream has a populated trail.
	for _, id := range ids {
		st, err := s.TraceStream(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Events) == 0 || st.Audit.Applies == 0 {
			t.Fatalf("stream %s has an empty trail after load: %d events, %d applies", id, len(st.Events), st.Audit.Applies)
		}
	}
}
