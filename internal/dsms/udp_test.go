package dsms

import (
	"bytes"
	"encoding/json"
	"math"
	"net/netip"
	"strings"
	"testing"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/gen"
	"streamkf/internal/netsim"
	"streamkf/internal/stream"
)

// udpQuery is the shared registration for the datagram-semantics tests:
// a linear model with a delta loose enough that suppression leaves a
// mixed applied/suppressed trace, tight enough to produce ~10²  updates
// from udpData.
func udpQuery() stream.Query {
	return stream.Query{ID: "q1", SourceID: "src", Delta: 0.5, Model: "linear"}
}

func udpData() []stream.Reading { return gen.Ramp(360, 0, 1.5, 0.3, 13) }

// makeUpdates runs the DKF suppression protocol over data on a scratch
// server and captures the transmitted update sequence — the exact
// packets any transport would carry.
func makeUpdates(t testing.TB, q stream.Query, data []stream.Reading) []core.Update {
	t.Helper()
	s := NewServer(testCatalog())
	if err := s.Register(q); err != nil {
		t.Fatal(err)
	}
	cfg, err := s.InstallFor(q.SourceID)
	if err != nil {
		t.Fatal(err)
	}
	var ups []core.Update
	agent, err := NewAgent(cfg, core.TransportFunc(func(u core.Update) error {
		u.Values = append([]float64(nil), u.Values...)
		ups = append(ups, u)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Run(stream.NewSliceSource(data)); err != nil {
		t.Fatal(err)
	}
	if len(ups) < 20 || len(ups) >= len(data) {
		t.Fatalf("replay produced %d updates over %d readings; want a mixed trace", len(ups), len(data))
	}
	return ups
}

// newUDPPair builds a server with q registered and a UDPServer bound to
// loopback. Tests that feed processDatagram directly never start Serve;
// the socket only matters for the end-to-end test.
func newUDPPair(t testing.TB, q stream.Query) (*Server, *UDPServer) {
	t.Helper()
	s := NewServer(testCatalog())
	if err := s.Register(q); err != nil {
		t.Fatal(err)
	}
	ts, err := NewUDPServer(s, "127.0.0.1:0", UDPServerOptions{
		Engine: EngineOptions{Shards: 2, RingSize: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ts.Close()
		s.Engine().Close()
	})
	return s, ts
}

// updateDatagram encodes u as one self-describing datagram.
func updateDatagram(t testing.TB, u *core.Update) []byte {
	t.Helper()
	b := wire.AppendPreamble(nil, wire.Version, 0)
	b, err := wire.AppendUpdateFrame(b, u)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// deliver feeds updates to the UDP server in the given arrival order
// (one datagram each, schedule indices from netsim.Link) and waits for
// the engine to drain.
func deliver(t testing.TB, ts *UDPServer, ups []core.Update, order []int) {
	t.Helper()
	for _, idx := range order {
		ts.processDatagram(updateDatagram(t, &ups[idx]), netip.AddrPort{})
	}
	ts.eng.Quiesce()
	for _, sh := range ts.eng.Stats() {
		if sh.Dropped != 0 {
			t.Fatalf("engine shed %d updates; ring sized too small for the test", sh.Dropped)
		}
	}
}

// surviving applies the engine's datagram-dedup rules to an arrival
// order and returns the subsequence that reaches the filter, plus the
// expected dedup / pre-bootstrap drop counts.
func surviving(ups []core.Update, order []int) (applied []core.Update, dedup, preBoot int) {
	last := -1
	for _, idx := range order {
		u := ups[idx]
		if last >= 0 && u.Seq <= last {
			dedup++
			continue
		}
		if !u.Bootstrap && last < 0 {
			preBoot++
			continue
		}
		applied = append(applied, u)
		last = u.Seq
	}
	return applied, dedup, preBoot
}

// refServer applies ups in order through the synchronous HandleUpdate
// path — the TCP trajectory — and returns the server.
func refServer(t testing.TB, q stream.Query, ups []core.Update) *Server {
	t.Helper()
	s := NewServer(testCatalog())
	if err := s.Register(q); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InstallFor(q.SourceID); err != nil {
		t.Fatal(err)
	}
	for i := range ups {
		if err := s.HandleUpdate(ups[i]); err != nil {
			t.Fatalf("HandleUpdate(seq %d): %v", ups[i].Seq, err)
		}
	}
	return s
}

// nodeSnapshot grabs the full filter state (x, P, indices, health) of a
// source on s.
func nodeSnapshot(t testing.TB, s *Server, id string) *core.NodeSnapshot {
	t.Helper()
	s.mu.RLock()
	st := s.sources[id]
	s.mu.RUnlock()
	if st == nil {
		t.Fatalf("source %q not on server", id)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.node == nil {
		t.Fatalf("source %q not installed", id)
	}
	snap := st.node.Snapshot()
	if snap == nil {
		t.Fatalf("source %q not bootstrapped", id)
	}
	return snap
}

// assertSameState asserts bit-identical filter state: every element of
// x and P compared with ==, no tolerance.
func assertSameState(t *testing.T, got, want *core.NodeSnapshot) {
	t.Helper()
	if got.Seq != want.Seq || got.K != want.K || got.Ticks != want.Ticks {
		t.Fatalf("indices diverged: got (seq %d, k %d, ticks %d), want (seq %d, k %d, ticks %d)",
			got.Seq, got.K, got.Ticks, want.Seq, want.K, want.Ticks)
	}
	if len(got.X) != len(want.X) || len(got.P) != len(want.P) {
		t.Fatalf("state dims diverged: got %d/%d, want %d/%d", len(got.X), len(got.P), len(want.X), len(want.P))
	}
	for i := range got.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("x[%d] = %v, want %v (bit-identical)", i, got.X[i], want.X[i])
		}
	}
	for i := range got.P {
		if got.P[i] != want.P[i] {
			t.Fatalf("P[%d] = %v, want %v (bit-identical)", i, got.P[i], want.P[i])
		}
	}
	if got.NISValid != want.NISValid || (got.NISValid && got.LastNIS != want.LastNIS) {
		t.Fatalf("NIS diverged: got (%v, %v), want (%v, %v)", got.LastNIS, got.NISValid, want.LastNIS, want.NISValid)
	}
}

func assertFiniteState(t *testing.T, snap *core.NodeSnapshot) {
	t.Helper()
	for i, v := range snap.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("x[%d] = %v: state corrupted", i, v)
		}
	}
	for i, v := range snap.P {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("P[%d] = %v: covariance corrupted", i, v)
		}
	}
}

func engineDedupCount(s *Server) int {
	z := s.engineStreamz()
	total := 0
	for _, sh := range z.PerShard {
		total += int(sh.Dedup)
	}
	return total
}

// TestUDPTrajectoryBitIdenticalToTCPInOrder is the transport-equivalence
// acceptance gate: the same update sequence delivered in order over
// datagrams must leave the server filter bit-identical — x, P, indices,
// NIS — to the synchronous TCP apply path.
func TestUDPTrajectoryBitIdenticalToTCPInOrder(t *testing.T) {
	q := udpQuery()
	ups := makeUpdates(t, q, udpData())
	ref := refServer(t, q, ups)

	s, ts := newUDPPair(t, q)
	order := netsim.Link{}.Schedule(len(ups)) // identity
	deliver(t, ts, ups, order)

	assertSameState(t, nodeSnapshot(t, s, q.SourceID), nodeSnapshot(t, ref, q.SourceID))
	if n := engineDedupCount(s); n != 0 {
		t.Fatalf("in-order delivery hit the dedup path %d times", n)
	}

	// The equivalence must also be visible through the query surface.
	last := ups[len(ups)-1].Seq
	got, err := s.Answer(q.ID, last)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Answer(q.ID, last)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Answer[%d] = %v over UDP, %v over TCP", i, got[i], want[i])
		}
	}
}

// TestUDPLossyLinkSemantics drives the datagram path through
// deterministic netsim.Link misbehavior and pins the loss-tolerance
// contract: duplicates are seq-deduped bit-identically to the in-order
// TCP trajectory, reordering degrades to loss of the delayed update
// (never a mis-ordered apply), and loss only delays convergence —
// the state the filter does reach is bit-identical to a TCP server fed
// the surviving subsequence, and x/P stay finite and tracking.
func TestUDPLossyLinkSemantics(t *testing.T) {
	q := udpQuery()
	data := udpData()
	ups := makeUpdates(t, q, data)
	truth := data[len(data)-1].Values[0]

	cases := []struct {
		name string
		link netsim.Link
	}{
		// Every 3rd datagram delivered twice: first arrivals stay in seq
		// order, so the applied trajectory is the full in-order one.
		{"duplication", netsim.Link{DupEvery: 3}},
		// Adjacent swaps invert seq order pairwise: the delayed older
		// update arrives stale and is dropped — reordering degrades to
		// loss, never to out-of-order apply.
		{"reorder", netsim.Link{SwapEvery: 4}},
		// Every 5th datagram vanishes: the prediction covers the gap
		// until the next transmission.
		{"loss", netsim.Link{DropEvery: 5}},
		// All three at once.
		{"lossy", netsim.Link{DropEvery: 7, DupEvery: 3, SwapEvery: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			order := tc.link.Schedule(len(ups))
			want, dedup, preBoot := surviving(ups, order)
			if preBoot != 0 {
				t.Fatalf("schedule delayed the bootstrap; pick knobs that keep position 0 first")
			}
			if len(want) == 0 || !want[0].Bootstrap {
				t.Fatalf("surviving subsequence unusable: %d updates", len(want))
			}

			s, ts := newUDPPair(t, q)
			deliver(t, ts, ups, order)

			// Bit-identical to the TCP trajectory over what survived the
			// link. For pure duplication the surviving subsequence IS the
			// full in-order sequence, so this is the dedup≡in-order claim.
			ref := refServer(t, q, want)
			snap := nodeSnapshot(t, s, q.SourceID)
			assertSameState(t, snap, nodeSnapshot(t, ref, q.SourceID))
			if got := engineDedupCount(s); got != dedup {
				t.Fatalf("dedup counter = %d, schedule implies %d", got, dedup)
			}

			// Convergence: never corrupted, still tracking the ramp at the
			// stream's end despite whatever the link withheld.
			assertFiniteState(t, snap)
			ans, err := s.Answer(q.ID, data[len(data)-1].Seq)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ans[0]-truth) > 10 {
				t.Fatalf("answer %v after lossy link, truth %v: lost convergence", ans[0], truth)
			}
		})
	}
}

// TestUDPIngestLoopbackEndToEnd exercises the real sockets: retried
// hello handshake, datagram agent, socket reader, engine apply.
func TestUDPIngestLoopbackEndToEnd(t *testing.T) {
	q := udpQuery()
	s, ts := newUDPPair(t, q)
	go ts.Serve()

	agent, err := DialSourceUDP(ts.Addr().String(), q.SourceID, testCatalog(), UDPDialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if inst := agent.Install(); inst.Model != q.Model || inst.Delta != q.Delta {
		t.Fatalf("install reply %+v does not match registration", inst)
	}
	if inst := agent.Install(); inst.ResumeSeq != -1 {
		t.Fatalf("fresh source got ResumeSeq %d", inst.ResumeSeq)
	}

	data := udpData()
	for _, r := range data {
		if _, err := agent.Offer(r); err != nil {
			t.Fatal(err)
		}
	}
	ast := agent.Stats()

	// Fire-and-forget transport: wait for the socket reader and engine
	// to drain everything the agent transmitted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sts := s.Stats()
		if len(sts) == 1 && sts[0].Updates == ast.Updates {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server stats %+v never reached agent's %d updates", sts, ast.Updates)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The bootstrap rides in triplicate; the extras land in dedup.
	if n := engineDedupCount(s); n != 2 {
		t.Fatalf("dedup counter = %d, want 2 (duplicated bootstrap copies)", n)
	}
	ans, err := s.Answer(q.ID, data[len(data)-1].Seq)
	if err != nil {
		t.Fatal(err)
	}
	truth := data[len(data)-1].Values[0]
	if math.Abs(ans[0]-truth) > 10 {
		t.Fatalf("answer %v, truth %v", ans[0], truth)
	}
}

// TestUDPRxAllocFree gates the steady-state datagram receive path —
// preamble check, frame walk, update decode, source-id intern, ring
// handoff, shard dedup — at zero allocations per datagram.
func TestUDPRxAllocFree(t *testing.T) {
	q := udpQuery()
	_, ts := newUDPPair(t, q)

	boot := core.Update{SourceID: q.SourceID, Seq: 0, Time: 0, Values: []float64{1}, Bootstrap: true}
	deliver(t, ts, []core.Update{boot}, []int{0})

	// Replaying the bootstrap's seq exercises the full rx path into the
	// shard's dedup drop — the steady-state shape for duplicated
	// datagrams — without the apply step's own budget (gated separately
	// by TestUDPIngestAllocBudget). Warm two full ring wraps first:
	// every slot's value buffer allocates once on its first use, and the
	// steady-state claim starts after that.
	dg := updateDatagram(t, &boot)
	for wrap := 0; wrap < 4; wrap++ {
		for i := 0; i < 2048; i++ { // half the ring: quiesce before it can fill and shed
			ts.processDatagram(dg, netip.AddrPort{})
		}
		ts.eng.Quiesce()
	}
	n := testing.AllocsPerRun(200, func() {
		ts.processDatagram(dg, netip.AddrPort{})
	})
	ts.eng.Quiesce()
	if n != 0 {
		t.Fatalf("UDP rx path allocates %v/datagram, want 0", n)
	}
}

// TestUDPIngestAllocBudget gates the steady-state shard apply path on
// the allocation budget pinned in BENCH_INGEST.json — the engine must
// not cost more per applied update than the synchronous path's budget.
func TestUDPIngestAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a benchmark")
	}
	budget, ok := benchBudgets(t, "../../BENCH_INGEST.json")["BenchmarkUDPIngest/apply"]
	if !ok {
		t.Fatal("BENCH_INGEST.json has no BenchmarkUDPIngest/apply entry")
	}
	res := testing.Benchmark(benchUDPIngestApply)
	if got := res.AllocsPerOp(); got > budget {
		t.Fatalf("UDP shard apply allocates %d/op, budget %d/op (BENCH_INGEST.json)", got, budget)
	}
}

// TestEngineTelemetryScrape asserts the per-shard occupancy and
// datagram counters are visible through both operator surfaces: the
// /streamz JSON document and the Prometheus exposition.
func TestEngineTelemetryScrape(t *testing.T) {
	q := udpQuery()
	ups := makeUpdates(t, q, udpData())
	s, ts := newUDPPair(t, q)
	deliver(t, ts, ups, netsim.Link{DupEvery: 2}.Schedule(len(ups)))

	z := s.Streamz()
	if z.Engine == nil {
		t.Fatal("Streamz has no engine block with an engine attached")
	}
	if z.Engine.Shards != 2 || len(z.Engine.PerShard) != 2 {
		t.Fatalf("engine block reports %d shards / %d rows, want 2", z.Engine.Shards, len(z.Engine.PerShard))
	}
	var applied, dedup int64
	for _, sh := range z.Engine.PerShard {
		applied += sh.Applied
		dedup += sh.Dedup
	}
	if applied != int64(len(ups)) {
		t.Fatalf("per-shard applied sums to %d, want %d", applied, len(ups))
	}
	if dedup == 0 {
		t.Fatal("duplicated delivery left dedup counter at 0")
	}
	if z.Engine.DatagramsRx == 0 || z.Engine.FramesRx < z.Engine.DatagramsRx {
		t.Fatalf("datagram counters implausible: rx %d, frames %d", z.Engine.DatagramsRx, z.Engine.FramesRx)
	}
	raw, err := json.Marshal(z)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"engine"`, `"per_shard"`, `"ring_depth_hwm"`, `"datagrams_rx"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("/streamz JSON missing %s:\n%s", want, raw)
		}
	}

	var buf bytes.Buffer
	s.Telemetry().WritePrometheus(&buf)
	for _, want := range []string{
		"dkf_engine_applied_total", "dkf_engine_dedup_total",
		"dkf_engine_ring_depth_hwm", "dkf_udp_datagrams_rx_total",
		"dkf_udp_frames_rx_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Prometheus exposition missing %s", want)
		}
	}
}
