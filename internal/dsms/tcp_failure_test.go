package dsms

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms/wire"
	"streamkf/internal/stream"
)

// rawClient opens a plain TCP connection with framing helpers, for
// driving the server off the happy path.
func rawClient(t *testing.T, addr string) (net.Conn, *wire.Writer, *wire.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, wire.NewWriter(conn, 0, 0), wire.NewReader(conn, 0, 0)
}

func expectErrorFrame(t *testing.T, r *wire.Reader, want string) {
	t.Helper()
	tag, p, err := r.Next()
	if err != nil {
		t.Fatalf("reading error frame: %v", err)
	}
	if tag != wire.TagError {
		t.Fatalf("tag = %v, want error frame", tag)
	}
	msg, err := wire.DecodeError(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, want) {
		t.Fatalf("error frame %q, want substring %q", msg, want)
	}
}

func TestTCPVersionMismatchRejected(t *testing.T) {
	ts := startServer(t, NewServer(testCatalog()))
	conn, _, r := rawClient(t, ts.Addr())
	if err := wire.WritePreamble(conn, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPreamble(); err != nil {
		t.Fatal(err)
	}
	expectErrorFrame(t, r, "unsupported protocol version")
	// The server hangs up after the rejection.
	if _, _, err := r.Next(); !errors.Is(err, core.ErrPeerClosed) {
		t.Fatalf("after version rejection: %v, want peer closed", err)
	}
}

func TestTCPBadMagicRejected(t *testing.T) {
	ts := startServer(t, NewServer(testCatalog()))
	conn, _, r := rawClient(t, ts.Addr())
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// No preamble comes back — the peer is not speaking the protocol —
	// just a best-effort error frame, then the close.
	expectErrorFrame(t, r, "not speaking the streamkf wire protocol")
	if _, _, err := r.Next(); !errors.Is(err, core.ErrPeerClosed) {
		t.Fatalf("after magic rejection: %v, want peer closed", err)
	}
}

func TestTCPOversizedFrameRejected(t *testing.T) {
	ts := startServer(t, NewServer(testCatalog()))
	conn, _, r := rawClient(t, ts.Addr())
	if err := wire.WritePreamble(conn, wire.Version); err != nil {
		t.Fatal(err)
	}
	// Frame header announcing 2 MiB, beyond the 1 MiB default cap.
	hdr := []byte{0, 0, 32, 0, byte(wire.TagUpdate)}
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPreamble(); err != nil {
		t.Fatal(err)
	}
	expectErrorFrame(t, r, "exceeds limit")
}

func TestTCPServerClosedMidStream(t *testing.T) {
	catalog := testCatalog()
	s := NewServer(catalog)
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "walk", Delta: 1e-9, Model: "constant"})
	ts := startServerNoWait(t, s)

	agent, err := DialSource(ts.Addr(), "walk", catalog)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	// Stream a little, then yank the server.
	for i := 0; i < 10; i++ {
		if _, err := agent.Offer(stream.Reading{Seq: i, Time: float64(i), Values: []float64{float64(i)}}); err != nil {
			t.Fatalf("offer %d before close: %v", i, err)
		}
	}
	if err := agent.Drain(); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// The failure is asynchronous: keep offering until it surfaces.
	deadline := time.Now().Add(5 * time.Second)
	var offerErr error
	for i := 10; time.Now().Before(deadline); i++ {
		if _, offerErr = agent.Offer(stream.Reading{Seq: i, Time: float64(i), Values: []float64{float64(i)}}); offerErr != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if offerErr == nil {
		t.Fatal("no error surfaced after server close")
	}
	if agent.Err() == nil {
		t.Fatal("sticky error not recorded")
	}
	// A clean server-side close is reported as such, distinguishable
	// from truncation. (A send into the dead socket may beat the read
	// of the EOF; both surface the shutdown.)
	if errors.Is(offerErr, core.ErrTruncated) {
		t.Fatalf("clean shutdown misreported as truncation: %v", offerErr)
	}
	if errors.Is(offerErr, core.ErrPeerClosed) && !strings.Contains(offerErr.Error(), "server closed connection") {
		t.Fatalf("peer-closed error lacks context: %v", offerErr)
	}
}

// startServerNoWait is startServer without the Serve-error assertion —
// for tests that close the server while clients are mid-flight.
func startServerNoWait(t *testing.T, s *Server) *TCPServer {
	t.Helper()
	ts, err := NewTCPServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ts.Serve() }()
	t.Cleanup(func() {
		ts.Close()
		<-done
	})
	return ts
}

// fakeServer runs fn on the first accepted connection.
func fakeServer(t *testing.T, fn func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fn(conn)
	}()
	return ln.Addr().String()
}

func TestTCPDialSourceServerSpeaksWrongVersion(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		wire.WritePreamble(conn, 42)
		// Give the client a moment to read before the close.
		time.Sleep(50 * time.Millisecond)
	})
	_, err := DialSource(addr, "s", testCatalog())
	var ve *wire.VersionError
	if !errors.As(err, &ve) || ve.Got != 42 {
		t.Fatalf("dial against v42 server: %v, want VersionError", err)
	}
}

func TestTCPDialSourceTruncatedHandshake(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		wire.WritePreamble(conn, wire.Version)
		// A frame header promising 50 bytes, then the connection dies.
		conn.Write([]byte{51, 0, 0, 0, byte(wire.TagInstall), 1, 2, 3})
	})
	_, err := DialSource(addr, "s", testCatalog())
	if !errors.Is(err, core.ErrTruncated) {
		t.Fatalf("truncated handshake: %v, want core.ErrTruncated", err)
	}
}

func TestTCPDialSourceCleanClose(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		wire.WritePreamble(conn, wire.Version)
	})
	_, err := DialSource(addr, "s", testCatalog())
	if !errors.Is(err, core.ErrPeerClosed) {
		t.Fatalf("clean close during handshake: %v, want core.ErrPeerClosed", err)
	}
	if !strings.Contains(err.Error(), "server closed connection") {
		t.Fatalf("clean close lacks context: %v", err)
	}
}

func TestTCPQueryClientDistinguishesCloseFromTruncation(t *testing.T) {
	// Clean close after the preamble: ErrPeerClosed. The fake server
	// absorbs the query first so the client's write succeeds and the
	// failure is observed on the read side.
	addr := fakeServer(t, func(conn net.Conn) {
		wire.WritePreamble(conn, wire.Version)
		io.ReadFull(conn, make([]byte, 6)) // client preamble
		conn.Read(make([]byte, 64))        // the query frame
	})
	qc, err := DialQuery(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	if _, err := qc.Ask("q", 0); !errors.Is(err, core.ErrPeerClosed) {
		t.Fatalf("Ask after clean close: %v, want core.ErrPeerClosed", err)
	}

	// Partial frame then close: ErrTruncated.
	addr = fakeServer(t, func(conn net.Conn) {
		wire.WritePreamble(conn, wire.Version)
		io.ReadFull(conn, make([]byte, 6))
		conn.Read(make([]byte, 64))
		conn.Write([]byte{99, 0, 0, 0, byte(wire.TagAnswer), 7})
	})
	qc2, err := DialQuery(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer qc2.Close()
	if _, err := qc2.Ask("q", 0); !errors.Is(err, core.ErrTruncated) {
		t.Fatalf("Ask over truncated frame: %v, want core.ErrTruncated", err)
	}
}

// TestTCPPipelinedServerError proves a server-side failure of a
// pipelined update is delivered asynchronously and fails a later Offer,
// per the protocol contract.
func TestTCPPipelinedServerError(t *testing.T) {
	catalog := testCatalog()
	s := NewServer(catalog)
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "src", Delta: 1e-9, Model: "constant"})
	ts := startServer(t, s)
	agent, err := DialSource(ts.Addr(), "src", catalog)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if _, err := agent.Offer(stream.Reading{Seq: 0, Time: 0, Values: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	// Poison the server by advancing the filter past the next update's
	// sequence number: folding seq 1 after the prediction reached 100
	// is a protocol violation the server reports per-update.
	if err := agent.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Answer("q1", 100); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var offerErr error
	for i := 1; time.Now().Before(deadline); i++ {
		if _, offerErr = agent.Offer(stream.Reading{Seq: i, Time: float64(i), Values: []float64{float64(i * 10)}}); offerErr != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if offerErr == nil || !strings.Contains(offerErr.Error(), "server error") {
		t.Fatalf("pipelined server failure = %v, want async server error", offerErr)
	}
	if err := agent.Drain(); err == nil {
		t.Fatal("Drain succeeded after server error")
	}
}

// TestTCPServeAcceptErrorWaitsForHandlers is the regression test for
// Serve's non-graceful error path: when the listener dies outside
// Close, Serve must close live connections and wait out their handler
// goroutines before returning, not abandon them mid-flight.
func TestTCPServeAcceptErrorWaitsForHandlers(t *testing.T) {
	catalog := testCatalog()
	s := NewServer(catalog)
	mustRegister(t, s, stream.Query{ID: "q1", SourceID: "src", Delta: 1e-9, Model: "constant"})
	ts, err := NewTCPServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ts.Serve() }()

	agent, err := DialSource(ts.Addr(), "src", catalog)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if _, err := agent.Offer(stream.Reading{Seq: 0, Time: 0, Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := agent.Drain(); err != nil {
		t.Fatal(err)
	}

	// Kill the listener out from under Serve without Close: the next
	// Accept fails with closed=false — the non-graceful path.
	ts.ln.Close()
	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("Serve returned nil for a listener failure outside Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the listener died")
	}
	// Serve's return must imply every handler goroutine has unwound:
	// each decrements the active-connections gauge in its defer.
	if v, ok := s.Telemetry().Get("dkf_wire_connections_active"); !ok || v != 0 {
		t.Fatalf("dkf_wire_connections_active = %v after Serve returned; handler goroutines leaked", v)
	}
}
