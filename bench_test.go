// Benchmarks regenerating every table and figure of the paper's
// evaluation, one benchmark per artefact, plus the ablation benches
// called out in DESIGN.md §6. Each figure bench runs the full workload
// through the relevant scheme per iteration and reports the figure's
// headline quantity (e.g. %updates) via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates both the performance numbers
// and the experimental result.
package streamkf_test

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"streamkf"
	"streamkf/internal/baseline"
	"streamkf/internal/core"
	"streamkf/internal/experiments"
	"streamkf/internal/gen"
	"streamkf/internal/kalman"
	"streamkf/internal/mat"
	"streamkf/internal/model"
	"streamkf/internal/stream"
)

// runSession is the benchmark unit of work for a DKF curve point.
func runSession(b *testing.B, m model.Model, delta, f float64, data []stream.Reading) core.Metrics {
	b.Helper()
	sess, err := core.NewSession(core.Config{SourceID: "bench", Model: m, Delta: delta, F: f})
	if err != nil {
		b.Fatal(err)
	}
	metrics, err := sess.Run(data)
	if err != nil {
		b.Fatal(err)
	}
	return metrics
}

func runCacheBench(b *testing.B, width float64, dims int, data []stream.Reading) baseline.Metrics {
	b.Helper()
	c, err := baseline.NewCache(width, dims)
	if err != nil {
		b.Fatal(err)
	}
	m, err := c.Run(data)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- Figure 3: dataset generation ---

func BenchmarkFig3MovingObjectDataset(b *testing.B) {
	cfg := gen.DefaultMovingObject()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if data := gen.MovingObject(cfg); len(data) != cfg.N {
			b.Fatal("bad dataset")
		}
	}
}

// --- Figures 4 and 5: Example 1 at the paper's headline δ = 3 ---

func BenchmarkFig4Example1Updates(b *testing.B) {
	data := gen.MovingObject(gen.DefaultMovingObject())
	const delta = 3
	b.Run("caching", func(b *testing.B) {
		b.ReportAllocs()
		var m baseline.Metrics
		for i := 0; i < b.N; i++ {
			m = runCacheBench(b, 2*delta, 2, data)
		}
		b.ReportMetric(m.PercentUpdates(), "%updates")
	})
	b.Run("constantKF", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, model.Constant(2, 0.05, 0.05), delta, 0, data)
		}
		b.ReportMetric(m.PercentUpdates(), "%updates")
	})
	b.Run("linearKF", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, model.Linear(2, 0.1, 0.05, 0.05), delta, 0, data)
		}
		b.ReportMetric(m.PercentUpdates(), "%updates")
	})
}

func BenchmarkFig5Example1AvgError(b *testing.B) {
	data := gen.MovingObject(gen.DefaultMovingObject())
	const delta = 3
	b.Run("caching", func(b *testing.B) {
		b.ReportAllocs()
		var m baseline.Metrics
		for i := 0; i < b.N; i++ {
			m = runCacheBench(b, 2*delta, 2, data)
		}
		b.ReportMetric(m.AvgErr(), "avgErr")
	})
	b.Run("constantKF", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, model.Constant(2, 0.05, 0.05), delta, 0, data)
		}
		b.ReportMetric(m.AvgErr(), "avgErr")
	})
	b.Run("linearKF", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, model.Linear(2, 0.1, 0.05, 0.05), delta, 0, data)
		}
		b.ReportMetric(m.AvgErr(), "avgErr")
	})
}

// --- Figure 6: dataset generation ---

func BenchmarkFig6PowerLoadDataset(b *testing.B) {
	cfg := gen.DefaultPowerLoad()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if data := gen.PowerLoad(cfg); len(data) != cfg.N {
			b.Fatal("bad dataset")
		}
	}
}

// --- Figures 7 and 8: Example 2 at δ = 50 ---

func example2SinusoidalModel() model.Model {
	cfg := gen.DefaultPowerLoad()
	omega := 2 * math.Pi / 24
	return model.Sinusoidal(omega, -omega*9, cfg.DailyAmp*omega, 0.05, 0.05)
}

func BenchmarkFig7Example2Updates(b *testing.B) {
	data := gen.PowerLoad(gen.DefaultPowerLoad())
	const delta = 50
	b.Run("caching", func(b *testing.B) {
		b.ReportAllocs()
		var m baseline.Metrics
		for i := 0; i < b.N; i++ {
			m = runCacheBench(b, 2*delta, 1, data)
		}
		b.ReportMetric(m.PercentUpdates(), "%updates")
	})
	b.Run("linearKF", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, model.Linear(1, 1, 0.05, 0.05), delta, 0, data)
		}
		b.ReportMetric(m.PercentUpdates(), "%updates")
	})
	b.Run("sinusoidalKF", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, example2SinusoidalModel(), delta, 0, data)
		}
		b.ReportMetric(m.PercentUpdates(), "%updates")
	})
}

func BenchmarkFig8Example2AvgError(b *testing.B) {
	data := gen.PowerLoad(gen.DefaultPowerLoad())
	const delta = 50
	b.Run("caching", func(b *testing.B) {
		b.ReportAllocs()
		var m baseline.Metrics
		for i := 0; i < b.N; i++ {
			m = runCacheBench(b, 2*delta, 1, data)
		}
		b.ReportMetric(m.AvgErr(), "avgErr")
	})
	b.Run("linearKF", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, model.Linear(1, 1, 0.05, 0.05), delta, 0, data)
		}
		b.ReportMetric(m.AvgErr(), "avgErr")
	})
	b.Run("sinusoidalKF", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, example2SinusoidalModel(), delta, 0, data)
		}
		b.ReportMetric(m.AvgErr(), "avgErr")
	})
}

// --- Figure 9: dataset generation ---

func BenchmarkFig9HTTPTrafficDataset(b *testing.B) {
	cfg := gen.DefaultHTTPTraffic()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if data := gen.HTTPTraffic(cfg); len(data) != cfg.N {
			b.Fatal("bad dataset")
		}
	}
}

// --- Figure 10: smoothing adherence at F = 1e-9 ---

func BenchmarkFig10SmoothingVsMovingAverage(b *testing.B) {
	data := gen.HTTPTraffic(gen.DefaultHTTPTraffic())
	raw := stream.Values(data, 0)
	b.Run("movingAverage", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ma, err := baseline.NewMovingAverage(20)
			if err != nil {
				b.Fatal(err)
			}
			ma.Smooth(raw)
		}
	})
	b.Run("kfSmoother", func(b *testing.B) {
		b.ReportAllocs()
		var rmsToMA float64
		for i := 0; i < b.N; i++ {
			ma, err := baseline.NewMovingAverage(20)
			if err != nil {
				b.Fatal(err)
			}
			maVals := ma.Smooth(raw)
			m := model.Smoothing(1e-9, 1)
			f, err := m.NewFilter(raw[:1])
			if err != nil {
				b.Fatal(err)
			}
			var sum float64
			prevOut := raw[0]
			for j := 1; j < len(raw); j++ {
				f.Predict()
				if err := f.Correct(mat.Vec(raw[j])); err != nil {
					b.Fatal(err)
				}
				prevOut = f.PredictedMeasurement().At(0, 0)
				d := prevOut - maVals[j]
				sum += d * d
			}
			rmsToMA = math.Sqrt(sum / float64(len(raw)-1))
		}
		b.ReportMetric(rmsToMA, "rmsToMA")
	})
}

// --- Figure 11: DKF on smoothed traffic, F = 1e-7, δ = 10 ---

func BenchmarkFig11SmoothedDKFUpdates(b *testing.B) {
	data := gen.HTTPTraffic(gen.DefaultHTTPTraffic())
	const delta = 10
	b.Run("constantKF", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, model.Constant(1, 0.05, 0.05), delta, 1e-7, data)
		}
		b.ReportMetric(m.PercentUpdates(), "%updates")
	})
	b.Run("linearKF", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, model.Linear(1, 1, 0.05, 0.05), delta, 1e-7, data)
		}
		b.ReportMetric(m.PercentUpdates(), "%updates")
	})
}

// --- Figure 12: update rate vs smoothing factor at δ = 10 ---

func BenchmarkFig12SmoothingFactorSweep(b *testing.B) {
	data := gen.HTTPTraffic(gen.DefaultHTTPTraffic())
	for _, f := range []float64{1e-9, 1e-5, 1e-1} {
		f := f
		b.Run(fmtF(f), func(b *testing.B) {
			b.ReportAllocs()
			var m core.Metrics
			for i := 0; i < b.N; i++ {
				m = runSession(b, model.Constant(1, 0.05, 0.05), 10, f, data)
			}
			b.ReportMetric(m.PercentUpdates(), "%updates")
		})
	}
}

func fmtF(f float64) string {
	switch f {
	case 1e-9:
		return "F=1e-9"
	case 1e-5:
		return "F=1e-5"
	default:
		return "F=1e-1"
	}
}

// --- Table 1: quantified behavioural comparison ---

func BenchmarkTable1Comparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1Summary(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: dynamic Riccati vs precomputed steady-state gain ---

func BenchmarkAblationSteadyState(b *testing.B) {
	phi := mat.FromRows([][]float64{{1, 1}, {0, 1}})
	h := mat.FromRows([][]float64{{1, 0}})
	q := mat.ScaledIdentity(2, 0.05)
	r := mat.Diag(0.05)
	z := mat.Vec(1)
	b.Run("dynamic", func(b *testing.B) {
		b.ReportAllocs()
		f := kalman.MustNew(kalman.Config{Phi: kalman.Static(phi), H: h, Q: q, R: r, X0: mat.Vec(0, 0)})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.Step(z); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("steadyState", func(b *testing.B) {
		b.ReportAllocs()
		f, err := kalman.NewStatic(phi, h, q, r, mat.Vec(0, 0))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Predict()
			f.Correct(z)
		}
	})
}

// --- Ablation: correcting the mirror on every reading breaks synchrony ---

func BenchmarkAblationCorrectAlways(b *testing.B) {
	b.ReportAllocs()
	data := gen.MovingObject(gen.DefaultMovingObject())
	m := model.Linear(2, 0.1, 0.05, 0.05)
	const delta = 3.0
	var divergence float64
	for i := 0; i < b.N; i++ {
		// Protocol variant: the mirror corrects on EVERY reading while
		// still transmitting only out-of-bound ones, so the server (which
		// can only correct on transmissions) drifts away from what the
		// source believes the server knows.
		mirror, err := m.NewFilter(data[0].Values)
		if err != nil {
			b.Fatal(err)
		}
		server, err := m.NewFilter(data[0].Values)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range data[1:] {
			mirror.Predict()
			server.Predict()
			pred := mirror.PredictedMeasurement().VecSlice()
			if !stream.WithinPrecision(pred, r.Values, delta) {
				if err := server.Correct(mat.Vec(r.Values...)); err != nil {
					b.Fatal(err)
				}
			}
			if err := mirror.Correct(mat.Vec(r.Values...)); err != nil {
				b.Fatal(err)
			}
			sum += stream.AbsErrorSum(mirror.PredictedMeasurement().VecSlice(), server.PredictedMeasurement().VecSlice())
		}
		divergence = sum / float64(len(data)-1)
	}
	b.ReportMetric(divergence, "mirrorDivergence")
}

// --- Ablation: per-dimension max-abs precision test vs L2-norm test ---

func BenchmarkAblationNormTest(b *testing.B) {
	data := gen.MovingObject(gen.DefaultMovingObject())
	m := model.Linear(2, 0.1, 0.05, 0.05)
	const delta = 3.0
	b.Run("maxAbs", func(b *testing.B) {
		b.ReportAllocs()
		var metrics core.Metrics
		for i := 0; i < b.N; i++ {
			metrics = runSession(b, m, delta, 0, data)
		}
		b.ReportMetric(metrics.PercentUpdates(), "%updates")
	})
	b.Run("l2norm", func(b *testing.B) {
		b.ReportAllocs()
		var pct float64
		for i := 0; i < b.N; i++ {
			f, err := m.NewFilter(data[0].Values)
			if err != nil {
				b.Fatal(err)
			}
			updates := 1
			for _, r := range data[1:] {
				f.Predict()
				pred := f.PredictedMeasurement().VecSlice()
				var l2 float64
				for j := range pred {
					d := pred[j] - r.Values[j]
					l2 += d * d
				}
				if math.Sqrt(l2) > delta {
					if err := f.Correct(mat.Vec(r.Values...)); err != nil {
						b.Fatal(err)
					}
					updates++
				}
			}
			pct = 100 * float64(updates) / float64(len(data))
		}
		b.ReportMetric(pct, "%updates")
	})
}

// --- Ablation: smoothing on vs off for the noisy workload (fig11 vs fig4 path) ---

func BenchmarkAblationSmoothing(b *testing.B) {
	data := gen.HTTPTraffic(gen.DefaultHTTPTraffic())
	b.Run("raw", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, model.Linear(1, 1, 0.05, 0.05), 10, 0, data)
		}
		b.ReportMetric(m.PercentUpdates(), "%updates")
	})
	b.Run("smoothed", func(b *testing.B) {
		b.ReportAllocs()
		var m core.Metrics
		for i := 0; i < b.N; i++ {
			m = runSession(b, model.Linear(1, 1, 0.05, 0.05), 10, 1e-7, data)
		}
		b.ReportMetric(m.PercentUpdates(), "%updates")
	})
}

// --- Protocol micro-benchmarks: cost per reading ---

func BenchmarkDKFStepLinear2D(b *testing.B) {
	data := gen.MovingObject(gen.DefaultMovingObject())
	sess, err := streamkf.NewSession(streamkf.Config{
		SourceID: "bench",
		Model:    streamkf.LinearModel(2, 0.1, 0.05, 0.05),
		Delta:    3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := data[i%len(data)]
		r.Seq = i // keep sequence numbers consecutive across laps
		if _, err := sess.Step(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterStep measures the raw per-reading Predict+Correct cost
// for the paper's model sizes: the scalar constant model (n=1, m=1), the
// 1-D linear model (n=2, m=1), and the 2-D linear tracking model of
// Example 1 (n=4, m=2). Steady state must report 0 allocs/op.
func BenchmarkFilterStep(b *testing.B) {
	cases := []struct {
		name string
		m    model.Model
		z    []float64
	}{
		{"scalar", model.Constant(1, 0.05, 0.05), []float64{1.5}},
		{"linear1d", model.Linear(1, 1, 0.05, 0.05), []float64{1.5}},
		{"linear2d", model.Linear(2, 0.1, 0.05, 0.05), []float64{1.5, -0.5}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			f, err := tc.m.NewFilter(tc.z)
			if err != nil {
				b.Fatal(err)
			}
			z := mat.Vec(tc.z...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Step(z); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerIngestParallel measures the DSMS server's update-ingest
// throughput when every core feeds its own stream: one source per
// GOMAXPROCS goroutine, each goroutine hammering HandleUpdate for its
// source. With a global server lock this cannot scale past one core;
// with per-stream locking it should.
func BenchmarkServerIngestParallel(b *testing.B) {
	nSrc := runtime.GOMAXPROCS(0)
	catalog := streamkf.DefaultCatalog(1)
	server := streamkf.NewDSMSServer(catalog)
	for i := 0; i < nSrc; i++ {
		src := fmt.Sprintf("s%d", i)
		if err := server.Register(stream.Query{ID: "q" + src, SourceID: src, Delta: 1e-9, Model: "linear"}); err != nil {
			b.Fatal(err)
		}
		if _, err := server.InstallFor(src); err != nil {
			b.Fatal(err)
		}
		if err := server.HandleUpdate(core.Update{SourceID: src, Seq: 0, Values: []float64{0}, Bootstrap: true}); err != nil {
			b.Fatal(err)
		}
	}
	var nextSrc atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := fmt.Sprintf("s%d", int(nextSrc.Add(1)-1)%nSrc)
		seq := 1
		vals := []float64{0}
		for pb.Next() {
			vals[0] = float64(seq)
			if err := server.HandleUpdate(core.Update{SourceID: src, Seq: seq, Values: vals}); err != nil {
				b.Fatal(err)
			}
			seq++
		}
	})
}

func BenchmarkCacheStep(b *testing.B) {
	data := gen.MovingObject(gen.DefaultMovingObject())
	c, err := baseline.NewCache(6, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Process(data[i%len(data)]); err != nil {
			b.Fatal(err)
		}
	}
}
