#!/bin/sh
# Profile a live dkf-server under generated load.
#
# Usage: scripts/profile.sh cpu|heap [outfile]
#
# Starts dkf-server with four load queries, drives dkf-bench -load
# against it, and fetches the requested profile from the admin
# endpoint's /debug/pprof while ingest is running. Inspect the result
# with `go tool pprof <outfile>`.
set -eu

KIND="${1:?usage: profile.sh cpu|heap [outfile]}"
OUT="${2:-/tmp/dkf-$KIND.pprof}"
GO="${GO:-go}"
LISTEN="${LISTEN:-127.0.0.1:7474}"
ADMIN="${ADMIN:-127.0.0.1:7475}"
SOURCES="${SOURCES:-4}"
READINGS="${READINGS:-200000}"
SECONDS_CPU="${SECONDS_CPU:-5}"

case "$KIND" in
cpu)  PPROF_URL="http://$ADMIN/debug/pprof/profile?seconds=$SECONDS_CPU" ;;
heap) PPROF_URL="http://$ADMIN/debug/pprof/heap" ;;
*)    echo "profile.sh: unknown profile kind '$KIND' (want cpu or heap)" >&2; exit 2 ;;
esac

BIN="$(mktemp -d)"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT INT TERM
"$GO" build -o "$BIN" ./cmd/dkf-server ./cmd/dkf-bench

QUERY_FLAGS=""
i=0
while [ "$i" -lt "$SOURCES" ]; do
    QUERY_FLAGS="$QUERY_FLAGS -query q$i:load-$i:linear:0.5"
    i=$((i + 1))
done

# shellcheck disable=SC2086  # QUERY_FLAGS is a deliberate word list
"$BIN/dkf-server" -listen "$LISTEN" -admin "$ADMIN" -stats 0 $QUERY_FLAGS &
SERVER_PID=$!

# Wait for the admin endpoint to come up.
i=0
until curl -sf "http://$ADMIN/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "profile.sh: admin endpoint never came up" >&2; exit 1; }
    sleep 0.1
done

"$BIN/dkf-bench" -load -server "$LISTEN" -sources "$SOURCES" -n "$READINGS" &
LOAD_PID=$!

echo "fetching $PPROF_URL ..."
curl -sf -o "$OUT" "$PPROF_URL"

wait "$LOAD_PID"
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true

echo "profile written to $OUT"
echo "inspect with: $GO tool pprof $OUT"
