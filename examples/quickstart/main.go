// Quickstart: suppress updates on a drifting sensor stream.
//
// A simulated temperature sensor drifts up and down; the server must be
// able to answer "what is the temperature now?" within ±0.5 degrees. The
// Dual Kalman Filter pair lets the sensor stay silent whenever the
// server's own prediction is already good enough.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"streamkf"
)

func main() {
	// A linear model: state = [temperature, drift rate], sampled at 1 Hz.
	sess, err := streamkf.NewSession(streamkf.Config{
		SourceID: "thermometer",
		Model:    streamkf.LinearModel(1, 1.0, 0.01, 0.05),
		Delta:    0.5, // answers must stay within ±0.5 °C
	})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a day of readings: slow sinusoidal drift plus sensor noise.
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 86400/60) // one reading per minute
	for i := range vals {
		t := float64(i)
		vals[i] = 20 + 5*math.Sin(2*math.Pi*t/1440) + 0.05*rng.NormFloat64()
	}

	for _, r := range streamkf.FromValues(vals, 60) {
		est, err := sess.Step(r)
		if err != nil {
			log.Fatal(err)
		}
		// The server's answer is always within delta-ish of the truth.
		if d := math.Abs(est[0] - r.Values[0]); d > 2 {
			log.Fatalf("estimate drifted: %.2f vs %.2f", est[0], r.Values[0])
		}
	}

	m := sess.Metrics()
	fmt.Printf("readings:        %d\n", m.Readings)
	fmt.Printf("updates sent:    %d (%.2f%%)\n", m.Updates, m.PercentUpdates())
	fmt.Printf("bytes on wire:   %d\n", m.BytesSent)
	fmt.Printf("average error:   %.4f °C (constraint was ±0.5)\n", m.AvgErr())
	fmt.Printf("bandwidth saved: %.1f%%\n", 100-m.PercentUpdates())
}
