// Tracking: the paper's Example 1 — a moving object reports its 2-D
// position to a central server under a precision constraint.
//
// The example runs the same trajectory under three schemes — the
// value-caching baseline, the constant-model DKF and the linear
// (constant-velocity) DKF — and prints the paper's two metrics for each,
// demonstrating why caching a *predictive procedure* beats caching a
// value on streams with exploitable dynamics.
//
// Run with: go run ./examples/tracking
package main

import (
	"fmt"
	"log"

	"streamkf"
)

func main() {
	const delta = 3.0 // precision width, the paper's headline setting

	data := streamkf.MovingObject(streamkf.DefaultMovingObject())
	fmt.Printf("trajectory: %d positions sampled every 100 ms\n\n", len(data))

	// Scheme 1: the Olston-style value cache. Bound width 2δ gives the
	// same ±δ error guarantee as the DKF runs.
	cache, err := streamkf.NewCacheBaseline(2*delta, 2)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := cache.Run(data)
	if err != nil {
		log.Fatal(err)
	}

	// Scheme 2: DKF with the constant model (the worst case — it encodes
	// no dynamics, so it behaves like the cache).
	constant, err := run(streamkf.ConstantModel(2, 0.05, 0.05), delta, data)
	if err != nil {
		log.Fatal(err)
	}

	// Scheme 3: DKF with the paper's linear model — position and
	// velocity per axis (Eq. 14). The mirror filter learns each linear
	// segment's slope and the sensor goes silent until the next turn.
	linear, err := run(streamkf.LinearModel(2, 0.1, 0.05, 0.05), delta, data)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %10s %12s %12s\n", "scheme", "%updates", "avg error", "bytes")
	fmt.Printf("%-22s %9.2f%% %12.3f %12d\n", "caching (baseline)", cm.PercentUpdates(), cm.AvgErr(), cm.BytesSent)
	fmt.Printf("%-22s %9.2f%% %12.3f %12d\n", "DKF constant model", constant.PercentUpdates(), constant.AvgErr(), constant.BytesSent)
	fmt.Printf("%-22s %9.2f%% %12.3f %12d\n", "DKF linear model", linear.PercentUpdates(), linear.AvgErr(), linear.BytesSent)

	saved := 1 - float64(linear.Updates)/float64(cm.Updates)
	fmt.Printf("\nlinear DKF sent %.0f%% fewer updates than caching at δ=%.0f\n", 100*saved, delta)

	// The energy view (paper §1): transmitting a bit costs ~1500x an
	// instruction, so suppression is also a battery-life story.
	acct, err := streamkf.NewEnergyAccount(streamkf.DefaultEnergyModel(), 0)
	if err != nil {
		log.Fatal(err)
	}
	acct.ChargeTransmit(linear.BytesSent)
	dkfEnergy := acct.Spent()
	acctAll, _ := streamkf.NewEnergyAccount(streamkf.DefaultEnergyModel(), 0)
	acctAll.ChargeTransmit(cm.Readings * 28) // every reading shipped
	fmt.Printf("sensor transmit energy: %.2g units (DKF) vs %.2g (ship everything)\n",
		dkfEnergy, acctAll.Spent())
}

func run(m streamkf.Model, delta float64, data []streamkf.Reading) (streamkf.Metrics, error) {
	sess, err := streamkf.NewSession(streamkf.Config{SourceID: "object", Model: m, Delta: delta})
	if err != nil {
		return streamkf.Metrics{}, err
	}
	return sess.Run(data)
}
