// Netmonitor: the paper's Example 3 — monitoring HTTP traffic volume, a
// stream so noisy that no prediction model helps directly.
//
// The fix is the smoothing filter KFc at the source: a one-state Kalman
// filter whose process noise is the user's smoothing factor F. The
// mirror/server pair then tracks the *smoothed* signal. The example
// shows the F dial end to end: tiny F behaves like a moving average and
// nearly mutes the sensor; large F passes the noise through and the
// sensor chatters.
//
// Run with: go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"
	"math"

	"streamkf"
)

func main() {
	data := streamkf.HTTPTraffic(streamkf.DefaultHTTPTraffic())
	fmt.Printf("HTTP traffic: %d samples of packets-per-bucket, heavy noise, no trend\n\n", len(data))

	const delta = 10.0

	// Raw DKF on the unsmoothed stream: the noise exceeds delta all the
	// time, so suppression cannot work.
	raw, err := run(0, delta, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %9.2f%% updates, avg error vs raw %6.2f\n", "no smoothing", raw.PercentUpdates(), raw.AvgErrRaw())

	// The F dial, from moving-average-like to passthrough.
	for _, F := range []float64{1e-9, 1e-7, 1e-3, 1e-1} {
		m, err := run(F, delta, data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("F = %-10.0e %9.2f%% updates, avg error vs raw %6.2f\n", F, m.PercentUpdates(), m.AvgErrRaw())
	}

	// Compare the KFc smoother against the classical moving average on
	// the same stream (the paper's Figure 10): with a small F the two
	// trajectories nearly coincide — but KFc needs no window memory.
	vals := make([]float64, len(data))
	for i, r := range data {
		vals[i] = r.Values[0]
	}
	ma, err := streamkf.NewMovingAverage(20)
	if err != nil {
		log.Fatal(err)
	}
	maVals := ma.Smooth(vals)

	smoothing := streamkf.SmoothingModel(1e-9, 1)
	kf, err := streamkf.NewFilter(streamkf.FilterConfig{
		Phi: smoothing.Phi,
		H:   smoothing.H,
		Q:   smoothing.Q,
		R:   smoothing.R,
		X0:  smoothing.Init(vals[:1]),
	})
	if err != nil {
		log.Fatal(err)
	}
	var sumSq float64
	for i := 1; i < len(vals); i++ {
		kf.Predict()
		if err := kf.Correct(streamkf.MatrixFromRows([][]float64{{vals[i]}})); err != nil {
			log.Fatal(err)
		}
		d := kf.PredictedMeasurement().At(0, 0) - maVals[i]
		sumSq += d * d
	}
	rms := math.Sqrt(sumSq / float64(len(vals)-1))
	fmt.Printf("\nKFc (F=1e-9) vs 20-sample moving average: RMS distance %.2f packets\n", rms)
	fmt.Println("(the KF smoother tracks the moving average with zero window memory)")
}

func run(f, delta float64, data []streamkf.Reading) (streamkf.Metrics, error) {
	sess, err := streamkf.NewSession(streamkf.Config{
		SourceID: "probe",
		Model:    streamkf.ConstantModel(1, 0.05, 0.05),
		Delta:    delta,
		F:        f,
	})
	if err != nil {
		return streamkf.Metrics{}, err
	}
	return sess.Run(data)
}
