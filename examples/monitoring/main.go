// Monitoring: the DSMS's query-surface features working together — the
// continuous query language, an aggregate over several zones, a
// threshold alert with hysteresis, and a push subscription — all served
// from Kalman predictions while the sensors stay mostly silent.
//
// Run with: go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"

	"streamkf"
)

func main() {
	catalog := streamkf.DefaultCatalog(1)
	server := streamkf.NewDSMSServer(catalog)

	// Install queries in the query language.
	for _, stmt := range []string{
		"SELECT VALUE FROM zone-a MODEL linear WITHIN 25 AS load-a",
		"SELECT AVG FROM zone-a, zone-b, zone-c MODEL linear WITHIN 40 AS regional-load",
	} {
		name, err := streamkf.InstallCQL(server, stmt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("installed %-14s  %s\n", name, stmt)
	}

	// An alert on the aggregate: fire when regional load tops 2300 (only the
	// heat wave, not the ordinary daily peak), with
	// hysteresis equal to the aggregate δ so prediction error alone can
	// never flap it.
	var mu sync.Mutex
	var alerts []streamkf.AlertEvent
	err := server.RegisterAlert(streamkf.Alert{
		ID:         "regional-peak",
		QueryID:    "regional-load",
		Threshold:  2300,
		Direction:  streamkf.AlertAbove,
		Hysteresis: 40,
	}, func(e streamkf.AlertEvent) {
		mu.Lock()
		alerts = append(alerts, e)
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}

	// A push subscription on the aggregate.
	updates, cancelSub, err := server.Subscribe("regional-load", 256)
	if err != nil {
		log.Fatal(err)
	}
	defer cancelSub()

	// Historical queries on zone-a: the update log doubles as a synopsis.
	if err := server.EnableHistory("zone-a"); err != nil {
		log.Fatal(err)
	}

	// Three zones with phase-shifted daily cycles; zone loads spike
	// together mid-experiment to trip the alert. Readings interleave
	// across zones step by step, as they would in a live deployment.
	const n = 24 * 14 // two weeks hourly
	zones := []string{"zone-a", "zone-b", "zone-c"}
	agents := make([]*streamkf.Agent, len(zones))
	workloads := make([][]streamkf.Reading, len(zones))
	for i, zone := range zones {
		cfg, err := server.InstallFor(zone)
		if err != nil {
			log.Fatal(err)
		}
		agents[i], err = streamkf.NewAgent(cfg, streamkf.TransportFunc(func(u streamkf.Update) error {
			return server.HandleUpdate(u)
		}))
		if err != nil {
			log.Fatal(err)
		}
		workloads[i] = zoneLoad(n, i)
	}
	for k := 0; k < n; k++ {
		for i := range zones {
			if _, err := agents[i].Offer(workloads[i][k]); err != nil {
				log.Fatal(err)
			}
		}
	}
	for i, zone := range zones {
		st := agents[i].Stats()
		fmt.Printf("%s: %d readings, %d updates (%.1f%%)\n",
			zone, st.Readings, st.Updates, 100*float64(st.Updates)/float64(st.Readings))
	}

	// Drain the push channel.
	var pushed int
	var lastPush streamkf.Notification
	for {
		select {
		case n := <-updates:
			lastPush, pushed = n, pushed+1
			continue
		default:
		}
		break
	}
	fmt.Printf("\npush subscription delivered %d fresh answers; latest: %.1f at seq %d\n",
		pushed, lastPush.Values[0], lastPush.Seq)

	ans, err := server.AnswerAggregate("regional-load", n-1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final regional load estimate: %.1f\n", ans)

	mu.Lock()
	fmt.Printf("alert %q fired %d time(s)", "regional-peak", len(alerts))
	if len(alerts) > 0 {
		fmt.Printf(" — first at seq %d with value %.1f", alerts[0].Seq, alerts[0].Value)
	}
	fmt.Println()
	mu.Unlock()

	// Time travel: what was zone-a's load last Tuesday at noon?
	past, err := server.AnswerAt("load-a", 36)
	if err != nil {
		log.Fatal(err)
	}
	readings, corrections, err := server.HistoryStats("zone-a")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("historical answer for zone-a at seq 36: %.1f (truth %.1f)\n",
		past[0], workloads[0][36].Values[0])
	fmt.Printf("history footprint: %d corrections stored for %d readings (%.0f%% compression)\n",
		corrections, readings, 100*(1-float64(corrections+1)/float64(readings)))
}

// zoneLoad builds one zone's hourly series: diurnal sinusoid, a shared
// mid-series heat wave, and noise.
func zoneLoad(n, zone int) []streamkf.Reading {
	rng := rand.New(rand.NewSource(int64(zone) + 1))
	vals := make([]float64, n)
	omega := 2 * math.Pi / 24
	phase := float64(zone) * 0.4
	for k := range vals {
		v := 1800 + 350*math.Sin(omega*float64(k)+phase) + 20*rng.NormFloat64()
		if k > n/2 && k < n/2+48 { // two-day heat wave
			v += 500
		}
		vals[k] = v
	}
	return streamkf.FromValues(vals, 3600)
}
