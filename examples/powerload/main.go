// Powerload: the paper's Example 2 — monitoring average zonal electric
// load, a stream with a strong sinusoidal (diurnal) trend.
//
// The example shows the payoff of installing the *right* state model:
// the sinusoidal model (Eq. 17) rides the daily cycle and barely ever
// transmits, the generic linear model does respectably, and it also
// shows robustness — the mismatched models degrade gracefully rather
// than blowing up.
//
// It finishes with the synopsis store: the same model compresses the
// month of readings for archival under a reconstruction error bound.
//
// Run with: go run ./examples/powerload
package main

import (
	"fmt"
	"log"
	"math"

	"streamkf"
)

func main() {
	cfg := streamkf.DefaultPowerLoad()
	data := streamkf.PowerLoad(cfg)
	fmt.Printf("power load: %d hourly readings, mean ~%.0f, daily amplitude ~%.0f\n\n",
		len(data), cfg.Base, cfg.DailyAmp)

	const delta = 50.0

	// The matched model: the generator's daily cycle is 24 hours, so
	// ω = 2π/24 per sample; γ scales the sinusoidal derivative.
	omega := 2 * math.Pi / 24
	sinusoidal := streamkf.SinusoidalModel(omega, -omega*9, cfg.DailyAmp*omega, 0.05, 0.05)
	linear := streamkf.LinearModel(1, 1, 0.05, 0.05)
	constant := streamkf.ConstantModel(1, 0.05, 0.05)

	fmt.Printf("%-22s %10s %12s\n", "model", "%updates", "avg error")
	for _, tc := range []struct {
		name  string
		model streamkf.Model
	}{
		{"sinusoidal (matched)", sinusoidal},
		{"linear", linear},
		{"constant (worst)", constant},
	} {
		sess, err := streamkf.NewSession(streamkf.Config{SourceID: "zone-7", Model: tc.model, Delta: delta})
		if err != nil {
			log.Fatal(err)
		}
		m, err := sess.Run(data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %9.2f%% %12.3f\n", tc.name, m.PercentUpdates(), m.AvgErr())
	}

	// Archive the month under a reconstruction error tolerance using the
	// matched model (the paper's future-work item 7).
	store, err := streamkf.NewSynopsis(sinusoidal, delta)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range data {
		if err := store.Append(r); err != nil {
			log.Fatal(err)
		}
	}
	size, err := store.SizeBytes()
	if err != nil {
		log.Fatal(err)
	}
	raw := len(data) * 8
	fmt.Printf("\nsynopsis store: %d readings -> %d corrections, %.1f%% of points kept\n",
		store.Len(), store.Corrections(), 100*store.CompressionRatio())
	fmt.Printf("encoded size: %d bytes vs %d raw (%.1fx smaller), reconstruction error <= %.0f\n",
		size, raw, float64(raw)/float64(size), store.Tolerance())
}
