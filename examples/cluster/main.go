// Cluster: a sharded DSMS behind a dkf-router, all in one process —
// two shard servers, a consistent-hash router fronting them with the
// unmodified source protocol, a cross-shard aggregate whose merged
// answer is bit-identical to a single server, and a live stream
// migration by checkpoint snapshot (DESIGN.md §17).
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"streamkf"
)

func main() {
	catalog := streamkf.DefaultCatalog(1)

	// Two shard servers on loopback. -shard-index in the dkf-server
	// binary does exactly this SetShardInfo call.
	shardAddrs := make([]string, 2)
	for i := range shardAddrs {
		s := streamkf.NewDSMSServer(catalog)
		s.SetShardInfo(i, 0)
		ts, err := streamkf.NewTCPServer(s, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go ts.Serve()
		defer ts.Close()
		shardAddrs[i] = ts.Addr()
	}

	// The router owns the placement ring and speaks the ordinary wire
	// protocol downstream — sources cannot tell it from a server.
	router, err := streamkf.NewClusterRouter("127.0.0.1:0", shardAddrs, streamkf.ClusterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	go router.Serve()
	defer router.Close()
	fmt.Printf("router on %s fronting shards %v\n", router.Addr(), shardAddrs)

	// A cross-shard aggregate: mean zonal load across four zones within
	// ±50. Each shard owning zones runs a partial at its slice of the
	// budget; the router merges the partials bit-identically.
	zones := []string{"zone-a", "zone-b", "zone-c", "zone-d"}
	agg := streamkf.AggregateQuery{ID: "gridload", SourceIDs: zones, Func: streamkf.AggAvg, Delta: 50, Model: "linear"}
	if err := router.RegisterAggregate(agg); err != nil {
		log.Fatal(err)
	}
	// Plus one plain query on a stream we will migrate later.
	if err := router.RegisterQuery(streamkf.Query{ID: "track", SourceID: "vehicle-7", Model: "linear2d", Delta: 3}); err != nil {
		log.Fatal(err)
	}
	for _, id := range append(append([]string(nil), zones...), "vehicle-7") {
		fmt.Printf("  %-10s -> shard %d\n", id, router.Ring().Owner(id))
	}

	// Every source dials the router like any server.
	workloads := make(map[string][]streamkf.Reading, len(zones)+1)
	for i, id := range zones {
		cfg := streamkf.DefaultPowerLoad()
		cfg.N = 2000
		cfg.Seed = int64(i + 1)
		cfg.Base += 100 * float64(i)
		workloads[id] = streamkf.PowerLoad(cfg)
	}
	workloads["vehicle-7"] = streamkf.MovingObject(streamkf.DefaultMovingObject())

	var wg sync.WaitGroup
	var mu sync.Mutex
	for id, data := range workloads {
		wg.Add(1)
		go func(id string, data []streamkf.Reading) {
			defer wg.Done()
			agent, err := streamkf.DialSource(router.Addr(), id, catalog)
			if err != nil {
				log.Fatalf("%s: %v", id, err)
			}
			defer agent.Close()
			if err := agent.Run(streamkf.NewSliceSource(data)); err != nil {
				log.Fatalf("%s: %v", id, err)
			}
			st := agent.Stats()
			mu.Lock()
			fmt.Printf("source %-10s readings=%5d updates=%5d (%5.2f%%) via shard %d\n",
				id, st.Readings, st.Updates, 100*float64(st.Updates)/float64(st.Readings), router.Ring().Owner(id))
			mu.Unlock()
		}(id, data)
	}
	wg.Wait()

	// The merged cross-shard answer, next to the ground truth.
	lastSeq := len(workloads[zones[0]]) - 1
	merged, err := router.AnswerAggregate("gridload", lastSeq)
	if err != nil {
		log.Fatal(err)
	}
	truth := 0.0
	for _, id := range zones {
		truth += workloads[id][lastSeq].Values[0]
	}
	truth /= float64(len(zones))
	fmt.Printf("\naggregate %s = %.2f (truth %.2f, Δ=%g, |err|=%.2f)\n",
		agg.ID, merged, truth, agg.Delta, math.Abs(merged-truth))

	// Migrate the tracked vehicle to the other shard: checkpoint
	// snapshot, restore, ResumeSeq cutover — no re-bootstrap. The pin
	// overrides hash placement and bumps the topology epoch.
	from := router.Ring().Owner("vehicle-7")
	to := 1 - from
	if err := router.Migrate("vehicle-7", to); err != nil {
		log.Fatal(err)
	}
	ringz := router.RingzSnapshot()
	fmt.Printf("migrated vehicle-7 shard %d -> %d (ring epoch %d, pins %v)\n",
		from, to, ringz.Epoch, ringz.Pins)

	// The query keeps answering from the restored filter state.
	qc, err := streamkf.DialQuery(router.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer qc.Close()
	vSeq := len(workloads["vehicle-7"]) - 1
	ans, err := qc.Ask("track", vSeq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query track after migration: answer %v (truth %v)\n",
		round2(ans), round2(workloads["vehicle-7"][vSeq].Values))
}

func round2(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = float64(int(v*100)) / 100
	}
	return out
}
