// Cluster: the full distributed DSMS in one process — a TCP server, a
// fleet of source agents streaming different workloads concurrently, and
// a query client reading live answers, exactly the Figure 1 deployment
// of the paper.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"sync"

	"streamkf"
)

func main() {
	catalog := streamkf.DefaultCatalog(1)
	server := streamkf.NewDSMSServer(catalog)

	// Three continuous queries over three sources, each with its own
	// precision constraint and model.
	queries := []streamkf.Query{
		{ID: "track-object", SourceID: "vehicle-7", Model: "linear2d", Delta: 3},
		{ID: "watch-load", SourceID: "zone-b", Model: "linear", Delta: 50},
		{ID: "watch-http", SourceID: "gateway", Model: "constant", Delta: 10, F: 1e-7},
	}
	for _, q := range queries {
		if err := server.Register(q); err != nil {
			log.Fatal(err)
		}
	}

	ts, err := streamkf.NewTCPServer(server, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ts.Serve() }()
	fmt.Printf("DSMS server on %s\n\n", ts.Addr())

	// Each source runs its agent over TCP, concurrently.
	workloads := map[string][]streamkf.Reading{
		"vehicle-7": streamkf.MovingObject(streamkf.DefaultMovingObject()),
		"zone-b":    streamkf.PowerLoad(streamkf.DefaultPowerLoad()),
		"gateway":   streamkf.HTTPTraffic(streamkf.DefaultHTTPTraffic()),
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for id, data := range workloads {
		wg.Add(1)
		go func(id string, data []streamkf.Reading) {
			defer wg.Done()
			agent, err := streamkf.DialSource(ts.Addr(), id, catalog)
			if err != nil {
				log.Fatalf("%s: %v", id, err)
			}
			defer agent.Close()
			if err := agent.Run(streamkf.NewSliceSource(data)); err != nil {
				log.Fatalf("%s: %v", id, err)
			}
			st := agent.Stats()
			mu.Lock()
			fmt.Printf("source %-10s readings=%5d updates=%5d (%5.2f%%) bytes=%d\n",
				id, st.Readings, st.Updates, 100*float64(st.Updates)/float64(st.Readings), st.BytesSent)
			mu.Unlock()
		}(id, data)
	}
	wg.Wait()

	// A client asks for the current answers.
	qc, err := streamkf.DialQuery(ts.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer qc.Close()
	fmt.Println()
	for _, q := range queries {
		lastSeq := len(workloads[q.SourceID]) - 1
		ans, err := qc.Ask(q.ID, lastSeq)
		if err != nil {
			log.Fatal(err)
		}
		truth := workloads[q.SourceID][lastSeq].Values
		fmt.Printf("query %-13s answer %v (truth %v, δ=%g)\n", q.ID, round2(ans), round2(truth), q.Delta)
	}

	ts.Close()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

func round2(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = float64(int(v*100)) / 100
	}
	return out
}
