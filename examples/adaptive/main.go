// Adaptive: online model switching (the paper's future-work item 2) and
// innovation-driven sampling (item 5) on a stream whose regime changes.
//
// The stream idles flat, then climbs steeply, then idles again. No fixed
// model is right throughout: the constant model chatters on the ramp, the
// linear model carries dead velocity state on the plateaus. The adaptive
// runner shadows both models at the source and reinstalls the winner
// when the regime flips; the sampled session additionally lets the
// sensor sleep whenever its mirror has been predicting well.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"streamkf"
)

func main() {
	data := regimeStream()
	const delta = 2.0
	fmt.Printf("stream: %d readings — flat, then slope 3, then flat\n\n", len(data))

	constant := streamkf.ConstantModel(1, 0.05, 0.05)
	linear := streamkf.LinearModel(1, 1, 0.05, 0.05)

	// Fixed models for reference.
	for _, tc := range []struct {
		name  string
		model streamkf.Model
	}{{"fixed constant", constant}, {"fixed linear", linear}} {
		sess, err := streamkf.NewSession(streamkf.Config{SourceID: "s", Model: tc.model, Delta: delta})
		if err != nil {
			log.Fatal(err)
		}
		m, err := sess.Run(data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %7.2f%% updates, avg error %.3f\n", tc.name, m.PercentUpdates(), m.AvgErr())
	}

	// The adaptive runner: shadow both models, switch on decisive wins.
	sel, err := streamkf.NewSelector([]streamkf.Model{constant, linear}, 40, 1.3)
	if err != nil {
		log.Fatal(err)
	}
	runner, err := streamkf.NewAdaptiveRunner("s", delta, 0, sel)
	if err != nil {
		log.Fatal(err)
	}
	am, switches, err := runner.Run(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %7.2f%% updates, avg error %.3f (%d model switches, ends on %q)\n",
		"adaptive", am.PercentUpdates(), am.AvgErr(), switches, runner.ActiveModel())

	// Adaptive sampling on top: the sensor sleeps while predictions hold.
	sampler, err := streamkf.NewAdaptiveSampler(delta, 0.3, 16)
	if err != nil {
		log.Fatal(err)
	}
	sampled, err := streamkf.NewSampledSession(streamkf.Config{SourceID: "s", Model: linear, Delta: delta}, sampler)
	if err != nil {
		log.Fatal(err)
	}
	sm, err := sampled.Run(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith adaptive sampling (linear model):\n")
	fmt.Printf("  sensing duty cycle: %.1f%% (%d of %d steps sensed)\n", sm.PercentSensed(), sm.Sensed, sm.Readings)
	fmt.Printf("  updates sent:       %.2f%%\n", sm.PercentUpdates())
	fmt.Printf("  avg error:          %.3f (precision constraint was ±%.0f)\n", sm.AvgErr(), delta)
}

func regimeStream() []streamkf.Reading {
	var vals []float64
	for i := 0; i < 600; i++ {
		vals = append(vals, 20)
	}
	v := 20.0
	for i := 0; i < 600; i++ {
		v += 3
		vals = append(vals, v)
	}
	for i := 0; i < 600; i++ {
		vals = append(vals, v)
	}
	return streamkf.FromValues(vals, 1)
}
