package streamkf_test

import (
	"fmt"

	"streamkf"
)

// ExampleNewSession demonstrates the DKF protocol on a perfectly linear
// stream: after the filter locks onto the slope, everything else is
// suppressed.
func ExampleNewSession() {
	sess, err := streamkf.NewSession(streamkf.Config{
		SourceID: "sensor-1",
		Model:    streamkf.LinearModel(1, 1, 0.05, 0.05),
		Delta:    1.0,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 2 * float64(i) // v = 2k: a pure trend
	}
	for _, r := range streamkf.FromValues(vals, 1) {
		if _, err := sess.Step(r); err != nil {
			fmt.Println(err)
			return
		}
	}
	m := sess.Metrics()
	fmt.Printf("readings=%d updates=%d\n", m.Readings, m.Updates)
	fmt.Printf("suppressed more than 90%%: %v\n", m.PercentUpdates() < 10)
	// Output:
	// readings=100 updates=3
	// suppressed more than 90%: true
}

// ExampleNewSynopsis stores a predictable stream within an error
// tolerance using only a handful of corrections.
func ExampleNewSynopsis() {
	m := streamkf.LinearModel(1, 1, 0.05, 0.05)
	store, err := streamkf.NewSynopsis(m, 0.5)
	if err != nil {
		fmt.Println(err)
		return
	}
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = 3 * float64(i)
	}
	for _, r := range streamkf.FromValues(vals, 1) {
		if err := store.Append(r); err != nil {
			fmt.Println(err)
			return
		}
	}
	fmt.Printf("readings=%d stored=%d\n", store.Len(), 1+store.Corrections())
	// Output:
	// readings=50 stored=3
}
