GO ?= go

.PHONY: build test race vet bench bench-net bench-ingest bench-wal bench-trace bench-selfmon bench-cluster fuzz check baseline profile-cpu profile-heap

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks: per-reading filter cost and parallel ingest.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFilterStep|BenchmarkServerIngestParallel|BenchmarkDKFStepLinear2D' -benchmem ./

# Loopback TCP ingest over the binary framed wire protocol (see
# BENCH_TCP.json for recorded before/after numbers).
bench-net:
	$(GO) test -run '^$$' -bench 'BenchmarkTCPIngest' -benchmem -count 3 ./internal/dsms/

# Shard-engine datagram ingest: the rx->apply hot path, the aggregate
# fan-in comparison against the per-connection TCP model, and the
# one-update-per-datagram udpgram shape whose receive syscalls the
# reader lanes batch with recvmmsg (udpgram-unbatched pins every batch
# knob to 1 = the pre-lane layout; see BENCH_INGEST.json for recorded
# before/after numbers). The 100k-source scale run is
# `go run ./cmd/dkf-bench -fanin -sources 100000 -n 20`, which also
# takes -lanes/-rxbatch/-sendbatch/-dgram to reproduce these shapes.
bench-ingest:
	$(GO) test -run '^$$' -bench 'BenchmarkUDPIngest' -benchmem -count 3 ./internal/dsms/
	$(GO) test -run '^$$' -bench 'BenchmarkIngestFanIn' -benchmem -benchtime 100000x -count 3 ./internal/dsms/

# WAL append cost per fsync policy plus the durable loopback ingest
# path (see BENCH_WAL.json for recorded numbers).
bench-wal:
	$(GO) test -run '^$$' -bench 'BenchmarkWALAppend' -benchmem -count 3 ./internal/wal/
	$(GO) test -run '^$$' -bench 'BenchmarkTCPIngestDurable' -benchmem -count 3 ./internal/dsms/

# Flight-recorder cost: raw trace recording and the fully traced
# loopback ingest path (see DESIGN.md §12).
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkTraceRecord' -benchmem -count 3 ./internal/trace/
	$(GO) test -run '^$$' -bench 'BenchmarkTCPIngest/(single|traced)' -benchmem -count 3 ./internal/dsms/

# Self-monitoring cost: one full registry snapshot into the metrics
# history ring (the per-tick body of -selfmon; must stay 0 allocs/op).
bench-selfmon:
	$(GO) test -run '^$$' -bench 'BenchmarkHistorySnapshot' -benchmem -count 3 ./internal/telemetry/history/

# Cluster router cost: the per-update forwarding hop (direct vs routed
# ingest) and cross-shard aggregate answer latency at 2 and 4 shards
# (see BENCH_CLUSTER.json for recorded numbers).
bench-cluster:
	$(GO) test -run '^$$' -bench 'BenchmarkRouterForward' -benchmem -count 3 ./internal/dsms/cluster/
	$(GO) test -run '^$$' -bench 'BenchmarkClusterAggregateAnswer' -benchmem -count 3 ./internal/dsms/cluster/

# Short fuzz pass over the wire frame decoders, WAL replay, checkpoint
# reader and the placement ring (the corpora are regenerated, not
# committed).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFrameDecode -fuzztime 30s ./internal/dsms/wire/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 30s ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzReadCheckpoint -fuzztime 15s ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzRingPlacement -fuzztime 15s ./internal/dsms/cluster/

# Full benchmark sweep regenerating every figure/table artefact.
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem ./...

check: build vet test race

# Re-measure the BENCH_BASELINE.json benchmarks on the current tree
# (see DESIGN.md §7; numbers are machine-dependent).
baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkFilterStep|BenchmarkServerIngestParallel|BenchmarkDKFStepLinear2D' -benchmem -count 1 ./ | tee /tmp/bench.out

# Profile a live server under generated load via the admin endpoint's
# /debug/pprof (see DESIGN.md §9). Writes /tmp/dkf-{cpu,heap}.pprof.
profile-cpu:
	GO=$(GO) sh scripts/profile.sh cpu

profile-heap:
	GO=$(GO) sh scripts/profile.sh heap
