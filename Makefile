GO ?= go

.PHONY: build test race vet bench bench-net check baseline profile-cpu profile-heap

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks: per-reading filter cost and parallel ingest.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFilterStep|BenchmarkServerIngestParallel|BenchmarkDKFStepLinear2D' -benchmem ./

# Loopback TCP ingest over the binary framed wire protocol (see
# BENCH_TCP.json for recorded before/after numbers).
bench-net:
	$(GO) test -run '^$$' -bench 'BenchmarkTCPIngest' -benchmem -count 3 ./internal/dsms/

# Full benchmark sweep regenerating every figure/table artefact.
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem ./...

check: build vet test race

# Re-measure the BENCH_BASELINE.json benchmarks on the current tree
# (see DESIGN.md §7; numbers are machine-dependent).
baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkFilterStep|BenchmarkServerIngestParallel|BenchmarkDKFStepLinear2D' -benchmem -count 1 ./ | tee /tmp/bench.out

# Profile a live server under generated load via the admin endpoint's
# /debug/pprof (see DESIGN.md §9). Writes /tmp/dkf-{cpu,heap}.pprof.
profile-cpu:
	GO=$(GO) sh scripts/profile.sh cpu

profile-heap:
	GO=$(GO) sh scripts/profile.sh heap
