// Command dkf-gen materializes the synthetic evaluation datasets as CSV.
//
// Usage:
//
//	dkf-gen -dataset movingobject -out fig3.csv
//	dkf-gen -dataset powerload    -out fig6.csv
//	dkf-gen -dataset httptraffic  -out fig9.csv -n 10000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "movingobject | powerload | httptraffic")
		out     = flag.String("out", "", "output CSV path (default: stdout)")
		n       = flag.Int("n", 0, "override the number of data points")
		seed    = flag.Int64("seed", 0, "override the RNG seed")
	)
	flag.Parse()

	data, err := generate(*dataset, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkf-gen: %v\n", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dkf-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := gen.WriteCSV(w, data); err != nil {
		fmt.Fprintf(os.Stderr, "dkf-gen: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d readings to %s\n", len(data), *out)
	}
}

func generate(dataset string, n int, seed int64) ([]stream.Reading, error) {
	switch dataset {
	case "movingobject":
		cfg := gen.DefaultMovingObject()
		if n > 0 {
			cfg.N = n
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return gen.MovingObject(cfg), nil
	case "powerload":
		cfg := gen.DefaultPowerLoad()
		if n > 0 {
			cfg.N = n
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return gen.PowerLoad(cfg), nil
	case "httptraffic":
		cfg := gen.DefaultHTTPTraffic()
		if n > 0 {
			cfg.N = n
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return gen.HTTPTraffic(cfg), nil
	case "":
		return nil, fmt.Errorf("missing -dataset (movingobject | powerload | httptraffic)")
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
