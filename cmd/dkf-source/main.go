// Command dkf-source runs a remote source agent: it connects to a
// dkf-server, receives its filter installation, and streams one of the
// synthetic datasets (or a CSV file) through the Dual Kalman Filter
// suppression protocol.
//
// Usage:
//
//	dkf-source -server 127.0.0.1:7474 -source sensor-a -dataset movingobject -rate 100ms
//	dkf-source -server 127.0.0.1:7474 -source sensor-b -csv readings.csv
//	dkf-source -server 127.0.0.1:7476 -source sensor-c -transport udp -dataset powerload
//
// With -transport udp the agent speaks the connectionless datagram
// protocol (the server must run with -udp): no acks, no resends — the
// DKF protocol's loss tolerance is the reliability layer, so -window
// does not apply.
//
// With -trace the agent keeps a local flight recorder of every
// suppression decision and — when the server also runs -trace — ships
// the decision evidence ahead of each update so the server's /tracez
// can show the full causal chain.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
	"streamkf/internal/telemetry"
	"streamkf/internal/trace"
)

// sourceAgent is what the streaming loop needs from either transport's
// agent: TCP's RemoteAgent and UDP's UDPAgent both satisfy it.
type sourceAgent interface {
	Offer(r stream.Reading) (sent bool, err error)
	Drain() error
	Stats() core.SourceStats
	Tracer() *trace.Recorder
	TraceNegotiated() bool
	Close() error
}

func main() {
	var (
		server    = flag.String("server", "127.0.0.1:7474", "dkf-server address")
		source    = flag.String("source", "", "source object id (must match a registered query)")
		dataset   = flag.String("dataset", "", "movingobject | powerload | httptraffic")
		csvPath   = flag.String("csv", "", "stream readings from this CSV instead of a generator")
		rate      = flag.Duration("rate", 0, "inter-reading delay (0 = as fast as possible)")
		dt        = flag.Float64("dt", 1.0, "sampling interval assumed by the model catalog")
		seed      = flag.Int64("seed", 0, "generator seed override")
		n         = flag.Int("n", 0, "generator length override")
		window    = flag.Int("window", dsms.DefaultWindow, "max unacked updates in flight (1 = synchronous ack per update; tcp only)")
		transport = flag.String("transport", "tcp", "transport protocol: tcp | udp")
		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		traceOn   = flag.Bool("trace", false, "record decision trails locally and offer them to the server")
		traceRing = flag.Int("trace-ring", 0, "flight-recorder ring size (0 = 256 default)")
		traceSamp = flag.Int("trace-sample", 0, "record the routine trail for 1-in-N readings (0/1 = all; decisions are always kept)")
	)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkf-source: %v\n", err)
		os.Exit(2)
	}
	logger := telemetry.NewLogger(os.Stderr, level)

	if *source == "" {
		logger.Error("-source is required")
		os.Exit(2)
	}
	data, err := loadData(*dataset, *csvPath, *n, *seed)
	if err != nil {
		logger.Error("load data failed", "err", err)
		os.Exit(2)
	}

	var agent sourceAgent
	switch *transport {
	case "tcp":
		agent, err = dsms.DialSourceOptions(*server, *source, dsms.DefaultCatalog(*dt), dsms.DialOptions{
			Window:      *window,
			Trace:       *traceOn,
			TraceRing:   *traceRing,
			TraceSample: *traceSamp,
		})
	case "udp":
		agent, err = dsms.DialSourceUDP(*server, *source, dsms.DefaultCatalog(*dt), dsms.UDPDialOptions{
			Trace:       *traceOn,
			TraceRing:   *traceRing,
			TraceSample: *traceSamp,
		})
	default:
		logger.Error("bad -transport; want tcp or udp", "transport", *transport)
		os.Exit(2)
	}
	if err != nil {
		logger.Error("dial failed", "server", *server, "transport", *transport, "err", err)
		os.Exit(1)
	}
	defer agent.Close()
	logger.Info("connected", "source", *source, "server", *server, "transport", *transport, "readings", len(data), "window", *window)
	if *traceOn {
		logger.Info("tracing enabled", "wire_frames", agent.TraceNegotiated())
	}

	start := time.Now()
	for _, r := range data {
		if _, err := agent.Offer(r); err != nil {
			logger.Error("offer failed", "seq", r.Seq, "err", err)
			os.Exit(1)
		}
		if *rate > 0 {
			time.Sleep(*rate)
		}
	}
	// Wait until the server has acknowledged every pipelined update
	// before reporting: the run is not done while updates are in flight.
	if err := agent.Drain(); err != nil {
		logger.Error("drain failed", "err", err)
		os.Exit(1)
	}
	st := agent.Stats()
	logger.Info("stream done",
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"readings", st.Readings, "updates", st.Updates,
		"sent_pct", fmt.Sprintf("%.2f", 100*float64(st.Updates)/float64(st.Readings)),
		"suppressed", st.Suppressed, "bytes", st.BytesSent)
	if *traceOn {
		printTrail(agent, 8)
	}
}

// printTrail dumps the tail of the local flight recorder to stderr.
// Suppression decisions never cross the wire — the suppressed half of
// the trail exists only here, at the source.
func printTrail(agent sourceAgent, n int) {
	events := agent.Tracer().Events()
	if len(events) > n {
		events = events[len(events)-n:]
	}
	fmt.Fprintf(os.Stderr, "decision trail (last %d events):\n", len(events))
	for _, ev := range events {
		e := ev.View()
		line := fmt.Sprintf("  trace=%d seq=%d %s", e.TraceID, e.Seq, e.Kind)
		if e.Decision != "" {
			line += " " + e.Decision
		}
		switch e.Kind {
		case "smooth":
			line += fmt.Sprintf(" raw=%.4g smoothed=%.4g", e.Raw, e.Value)
		case "predict", "decision":
			line += fmt.Sprintf(" value=%.4g pred=%.4g residual=%.4g δ=%.4g", e.Value, e.Pred, e.Residual, e.Delta)
			if e.NIS != 0 {
				line += fmt.Sprintf(" nis=%.4g", e.NIS)
			}
		case "wire_tx":
			line += fmt.Sprintf(" bytes=%d", e.Aux)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func loadData(dataset, csvPath string, n int, seed int64) ([]stream.Reading, error) {
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gen.ReadCSV(f)
	}
	switch dataset {
	case "movingobject":
		cfg := gen.DefaultMovingObject()
		if n > 0 {
			cfg.N = n
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return gen.MovingObject(cfg), nil
	case "powerload":
		cfg := gen.DefaultPowerLoad()
		if n > 0 {
			cfg.N = n
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return gen.PowerLoad(cfg), nil
	case "httptraffic":
		cfg := gen.DefaultHTTPTraffic()
		if n > 0 {
			cfg.N = n
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return gen.HTTPTraffic(cfg), nil
	default:
		return nil, fmt.Errorf("need -dataset (movingobject | powerload | httptraffic) or -csv")
	}
}
