// Fan-in mode: drive N simulated sources against one in-process server
// over the connectionless datagram transport and report aggregate
// ingest throughput plus per-source memory — the 100k-source scale
// experiment behind BENCH_INGEST.json. Simulated sources are plain
// sequence counters (no mirror filters): the workload isolates what the
// server's ingest engine costs, not what a source-side DKF costs.
//
// The per-connection TCP model is deliberately absent here: at 100k
// sources it cannot even be constructed on a default ulimit (two file
// descriptors per in-process connection), which is the scaling wall
// this mode exists to demonstrate. The controlled same-body comparison
// against TCP lives in BenchmarkIngestFanIn.
package main

import (
	"fmt"
	"runtime"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms"
	"streamkf/internal/stream"
)

type fanInConfig struct {
	sources   int
	n         int // updates per source, including the bootstrap
	shards    int
	ring      int
	lanes     int  // reader lanes on the socket (0 = default)
	rxBatch   int  // datagrams per receive syscall (0 = default)
	sendBatch int  // sealed datagrams per send syscall (0 = default)
	dgram     bool // one update per datagram (per-source wire shape)
}

// heapInUse forces a collection and returns the live heap, so deltas
// across setup phases attribute memory to what the phase created.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

func runFanIn(cfg fanInConfig) error {
	if cfg.sources <= 0 || cfg.n <= 0 {
		return fmt.Errorf("fanin: -sources and -n must be positive")
	}
	base := heapInUse()

	s := dsms.NewServer(dsms.DefaultCatalog(1))
	ids := make([]string, cfg.sources)
	for i := range ids {
		ids[i] = fmt.Sprintf("src-%06d", i)
		q := stream.Query{ID: "q-" + ids[i], SourceID: ids[i], Delta: 1e-6, Model: "constant"}
		if err := s.Register(q); err != nil {
			return err
		}
	}
	us, err := dsms.NewUDPServer(s, "127.0.0.1:0", dsms.UDPServerOptions{
		Lanes:   cfg.lanes,
		RxBatch: cfg.rxBatch,
		Engine:  dsms.EngineOptions{Shards: cfg.shards, RingSize: cfg.ring},
	})
	if err != nil {
		return err
	}
	go us.Serve()
	defer us.Close()
	eng := s.Engine()
	defer eng.Close()
	registered := heapInUse()

	flush := 0
	if cfg.dgram {
		// One update per sealed datagram: the wire shape a fleet of
		// per-source UDPAgents produces, where receive batching is the
		// whole game (an MTU-packed batcher already amortizes the rx
		// syscall across ~28 updates).
		flush = 1
	}
	batcher, err := dsms.DialUDPBatcherOpts(us.Addr().String(), dsms.UDPBatcherOptions{FlushBytes: flush, SendBatch: cfg.sendBatch})
	if err != nil {
		return err
	}
	defer batcher.Close()

	total := cfg.sources * cfg.n
	fmt.Printf("fan-in: %d sources x %d updates = %d total, %d shard(s), %d lane(s), dgram=%v\n",
		cfg.sources, cfg.n, total, eng.Shards(), us.Lanes(), cfg.dgram)

	// Datagrams are fire-and-forget, so the producer must flow-control
	// itself: bound in-flight updates against the engine's APPLIED count.
	// Applied (not offered) is the right watermark — it bounds occupancy
	// of every queue on the path, the kernel socket buffer and the SPSC
	// ring alike, so neither can overflow into silent loss no matter how
	// slow the shard worker is relative to the socket reader.
	const window = 2048
	start := time.Now()
	u := core.Update{Values: make([]float64, 1)}
	for i := 0; i < total; i++ {
		src := i % cfg.sources
		seq := i / cfg.sources
		u.SourceID = ids[src]
		u.Seq = seq
		u.Time = float64(seq)
		u.Values[0] = float64(src) + float64(seq)
		u.Bootstrap = seq == 0
		if err := batcher.Send(u); err != nil {
			return err
		}
		if i&(window-1) == window-1 {
			for eng.Applied()+window < uint64(i+1) {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	if err := batcher.Flush(); err != nil {
		return err
	}
	deadline := time.Now().Add(30 * time.Second)
	for eng.Applied() < uint64(total)*99/100 {
		eng.Quiesce()
		if time.Now().After(deadline) {
			return fmt.Errorf("fanin: stalled at %d/%d applied", eng.Applied(), total)
		}
		time.Sleep(200 * time.Microsecond)
	}
	eng.Quiesce()
	elapsed := time.Since(start)
	warm := heapInUse()

	applied, dropped := uint64(0), uint64(0)
	for _, st := range eng.Stats() {
		applied += st.Applied
		dropped += st.Dropped
	}
	z := s.Streamz().Engine
	fmt.Printf("elapsed: %v  aggregate: %.0f updates/sec  (%.0f ns/update)\n",
		elapsed.Round(time.Millisecond),
		float64(applied)/elapsed.Seconds(),
		float64(elapsed.Nanoseconds())/float64(applied))
	fmt.Printf("applied: %d/%d  ring-shed: %d", applied, total, dropped)
	if z != nil {
		fmt.Printf("  datagrams: %d  frames: %d  dedup: %d", z.DatagramsRx, z.FramesRx, engineDedup(z))
	}
	fmt.Println()
	fmt.Printf("memory: %.0f B/source registered, %.0f B/source warm (%d sources, heap %d -> %d -> %d KiB)\n",
		float64(registered-base)/float64(cfg.sources),
		float64(warm-base)/float64(cfg.sources),
		cfg.sources, base>>10, registered>>10, warm>>10)
	if dropped > 0 {
		return fmt.Errorf("fanin: ring shed %d updates; raise -ring or lower the rate", dropped)
	}
	return nil
}

func engineDedup(z *dsms.EngineStreamz) int64 {
	var n int64
	for _, sh := range z.PerShard {
		n += sh.Dedup
	}
	return n
}
