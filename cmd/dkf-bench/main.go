// Command dkf-bench regenerates the paper's tables and figures, and can
// drive load against a live server for profiling.
//
// Usage:
//
//	dkf-bench                      # run every experiment, print tables
//	dkf-bench -experiment fig4     # run one experiment
//	dkf-bench -list                # list experiment ids and captions
//	dkf-bench -experiment fig4 -csv out.csv   # also export sweep as CSV
//	dkf-bench -load -server 127.0.0.1:7474 -sources 4 -n 20000
//	dkf-bench -fanin -sources 100000 -n 20    # datagram fan-in scale run
package main

import (
	"flag"
	"fmt"
	"os"

	"streamkf/internal/dsms"
	"streamkf/internal/experiments"
	"streamkf/internal/metrics"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id to run (default: all)")
		list       = flag.Bool("list", false, "list available experiments and exit")
		csvPath    = flag.String("csv", "", "write sweep results as CSV to this file (single experiment only)")
		load       = flag.Bool("load", false, "stream generated load against a live dkf-server instead of running experiments")
		server     = flag.String("server", "127.0.0.1:7474", "dkf-server address (-load mode)")
		prefix     = flag.String("prefix", "load-", "source id prefix; source ids are <prefix>0..<prefix>N-1 (-load mode)")
		sources    = flag.Int("sources", 4, "number of concurrent source agents (-load mode)")
		n          = flag.Int("n", 20000, "readings per source (-load mode)")
		window     = flag.Int("window", dsms.DefaultWindow, "max unacked updates in flight per agent (-load mode)")
		rate       = flag.Duration("rate", 0, "inter-reading delay per agent (-load mode)")
		dataDir    = flag.String("data-dir", "", "run the load against an embedded durable server over this directory instead of -server (-load mode)")
		fsync      = flag.String("fsync", "interval", "WAL fsync policy for -data-dir: always|interval|off (-load mode)")
		selfmon    = flag.Bool("selfmon", false, "enable self-monitoring on the embedded -data-dir server (-load mode)")
		fanin      = flag.Bool("fanin", false, "drive -sources simulated sources over the datagram transport against an in-process server and report throughput + per-source memory")
		shards     = flag.Int("shards", 0, "ingest engine shard count; 0 = GOMAXPROCS (-fanin mode)")
		ring       = flag.Int("ring", 8192, "per-shard SPSC ring capacity (-fanin mode)")
		lanes      = flag.Int("lanes", 0, "UDP reader lanes sharing the socket; 0 = min(4, GOMAXPROCS) (-fanin mode)")
		rxBatch    = flag.Int("rxbatch", 0, "max datagrams per receive syscall (recvmmsg); 0 = 32 (-fanin mode)")
		sendBatch  = flag.Int("sendbatch", 0, "sealed datagrams per send syscall (sendmmsg); 0 = 16, 1 = write per datagram (-fanin mode)")
		dgram      = flag.Bool("dgram", false, "one update per datagram instead of MTU-packed datagrams — the per-source-agent wire shape (-fanin mode)")
	)
	flag.Parse()

	if *fanin {
		cfg := fanInConfig{sources: *sources, n: *n, shards: *shards, ring: *ring,
			lanes: *lanes, rxBatch: *rxBatch, sendBatch: *sendBatch, dgram: *dgram}
		if err := runFanIn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "dkf-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *load {
		cfg := loadConfig{server: *server, prefix: *prefix, sources: *sources, n: *n, window: *window, rate: *rate, dataDir: *dataDir, fsync: *fsync, selfmon: *selfmon}
		if err := runLoad(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "dkf-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n         expected: %s\n", e.ID, e.Title, e.Expected)
		}
		return
	}

	if *experiment != "" {
		e, ok := experiments.Get(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "dkf-bench: unknown experiment %q; use -list\n", *experiment)
			os.Exit(2)
		}
		if err := runOne(e, *csvPath); err != nil {
			fmt.Fprintf(os.Stderr, "dkf-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *csvPath != "" {
		fmt.Fprintln(os.Stderr, "dkf-bench: -csv requires -experiment")
		os.Exit(2)
	}
	for _, e := range experiments.All() {
		if err := runOne(e, ""); err != nil {
			fmt.Fprintf(os.Stderr, "dkf-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func runOne(e experiments.Experiment, csvPath string) error {
	r, err := e.Run()
	if err != nil {
		return err
	}
	fmt.Print(r.Table())
	fmt.Printf("expected shape: %s\n", e.Expected)
	if csvPath == "" {
		return nil
	}
	sw, ok := r.(*metrics.Sweep)
	if !ok {
		return fmt.Errorf("experiment %s is not a sweep; cannot export CSV", e.ID)
	}
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sw.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
