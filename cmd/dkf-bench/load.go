package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"streamkf/internal/dsms"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
	"streamkf/internal/wal"
)

// loadConfig drives concurrent source agents against a live dkf-server
// so its admin endpoint has real traffic to profile. The server must be
// started with one query per source id, e.g. for -sources 2 -prefix load-:
//
//	dkf-server -query q0:load-0:linear:0.5 -query q1:load-1:linear:0.5
//
// With -data-dir, dkf-bench instead starts its own durable in-process
// server over that directory, so profiles cover the WAL append and
// checkpoint paths without a separate dkf-server process.
type loadConfig struct {
	server  string
	prefix  string
	sources int
	n       int
	window  int
	rate    time.Duration
	dataDir string
	fsync   string
	selfmon bool
}

// startDurable spins up an embedded durable server with one query per
// load source and returns its address plus a shutdown func.
func startDurable(cfg loadConfig) (string, func() error, error) {
	policy, err := wal.ParseSyncPolicy(cfg.fsync)
	if err != nil {
		return "", nil, err
	}
	server, err := dsms.Open(dsms.DefaultCatalog(1.0), cfg.dataDir, dsms.DurabilityOptions{
		Sync:            policy,
		CheckpointEvery: 10000,
	})
	if err != nil {
		return "", nil, fmt.Errorf("open durable server: %w", err)
	}
	for i := 0; i < cfg.sources; i++ {
		q := stream.Query{
			ID:       fmt.Sprintf("q%d", i),
			SourceID: fmt.Sprintf("%s%d", cfg.prefix, i),
			Model:    "linear",
			Delta:    0.5,
		}
		if server.HasQuery(q.ID) {
			continue // recovered from a previous -load run over the same dir
		}
		if err := server.Register(q); err != nil {
			server.Close()
			return "", nil, err
		}
	}
	if cfg.selfmon {
		// Self-monitoring runs off the ingest path; enabling it here lets
		// profiles confirm the hot-path alloc budgets hold with it on.
		mon, err := server.EnableSelfMon(dsms.SelfMonOptions{})
		if err != nil {
			server.Close()
			return "", nil, err
		}
		mon.Start()
	}
	ts, err := dsms.NewTCPServer(server, "127.0.0.1:0")
	if err != nil {
		server.Close()
		return "", nil, err
	}
	go ts.Serve()
	return ts.Addr(), func() error {
		ts.Close()
		return server.Close()
	}, nil
}

func runLoad(cfg loadConfig) error {
	if cfg.dataDir != "" {
		addr, stop, err := startDurable(cfg)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "dkf-bench: durable close: %v\n", err)
			}
		}()
		cfg.server = addr
		fmt.Printf("durable load server on %s (data-dir %s, fsync %s)\n", addr, cfg.dataDir, cfg.fsync)
	}
	var wg sync.WaitGroup
	errs := make(chan error, cfg.sources)
	start := time.Now()
	for i := 0; i < cfg.sources; i++ {
		id := fmt.Sprintf("%s%d", cfg.prefix, i)
		// Distinct seeds so streams do not suppress in lockstep.
		data := gen.Ramp(cfg.n, float64(i), 2, 0.3, int64(i)+1)
		wg.Add(1)
		go func(id string, data []stream.Reading) {
			defer wg.Done()
			errs <- streamLoad(cfg, id, data)
		}(id, data)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Printf("load done: %d sources x %d readings in %v\n",
		cfg.sources, cfg.n, time.Since(start).Round(time.Millisecond))
	return nil
}

func streamLoad(cfg loadConfig, id string, data []stream.Reading) error {
	agent, err := dsms.DialSourceOptions(cfg.server, id, dsms.DefaultCatalog(1.0), dsms.DialOptions{Window: cfg.window})
	if err != nil {
		return fmt.Errorf("dial %s: %w", id, err)
	}
	defer agent.Close()
	for _, r := range data {
		if _, err := agent.Offer(r); err != nil {
			return fmt.Errorf("%s offer seq %d: %w", id, r.Seq, err)
		}
		if cfg.rate > 0 {
			time.Sleep(cfg.rate)
		}
	}
	if err := agent.Drain(); err != nil {
		return fmt.Errorf("%s drain: %w", id, err)
	}
	st := agent.Stats()
	fmt.Printf("%-12s readings=%d updates=%d (%.2f%%) suppressed=%d bytes=%d\n",
		id, st.Readings, st.Updates,
		100*float64(st.Updates)/float64(st.Readings), st.Suppressed, st.BytesSent)
	return nil
}
