package main

import (
	"fmt"
	"sync"
	"time"

	"streamkf/internal/dsms"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
)

// loadConfig drives concurrent source agents against a live dkf-server
// so its admin endpoint has real traffic to profile. The server must be
// started with one query per source id, e.g. for -sources 2 -prefix load-:
//
//	dkf-server -query q0:load-0:linear:0.5 -query q1:load-1:linear:0.5
type loadConfig struct {
	server  string
	prefix  string
	sources int
	n       int
	window  int
	rate    time.Duration
}

func runLoad(cfg loadConfig) error {
	var wg sync.WaitGroup
	errs := make(chan error, cfg.sources)
	start := time.Now()
	for i := 0; i < cfg.sources; i++ {
		id := fmt.Sprintf("%s%d", cfg.prefix, i)
		// Distinct seeds so streams do not suppress in lockstep.
		data := gen.Ramp(cfg.n, float64(i), 2, 0.3, int64(i)+1)
		wg.Add(1)
		go func(id string, data []stream.Reading) {
			defer wg.Done()
			errs <- streamLoad(cfg, id, data)
		}(id, data)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Printf("load done: %d sources x %d readings in %v\n",
		cfg.sources, cfg.n, time.Since(start).Round(time.Millisecond))
	return nil
}

func streamLoad(cfg loadConfig, id string, data []stream.Reading) error {
	agent, err := dsms.DialSourceOptions(cfg.server, id, dsms.DefaultCatalog(1.0), dsms.DialOptions{Window: cfg.window})
	if err != nil {
		return fmt.Errorf("dial %s: %w", id, err)
	}
	defer agent.Close()
	for _, r := range data {
		if _, err := agent.Offer(r); err != nil {
			return fmt.Errorf("%s offer seq %d: %w", id, r.Seq, err)
		}
		if cfg.rate > 0 {
			time.Sleep(cfg.rate)
		}
	}
	if err := agent.Drain(); err != nil {
		return fmt.Errorf("%s drain: %w", id, err)
	}
	st := agent.Stats()
	fmt.Printf("%-12s readings=%d updates=%d (%.2f%%) suppressed=%d bytes=%d\n",
		id, st.Readings, st.Updates,
		100*float64(st.Updates)/float64(st.Readings), st.Suppressed, st.BytesSent)
	return nil
}
