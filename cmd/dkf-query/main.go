// Command dkf-query asks a running dkf-server for continuous query
// answers.
//
// Usage:
//
//	dkf-query -server 127.0.0.1:7474 -query q1 -seq 3999
//	dkf-query -server 127.0.0.1:7474 -query q1 -watch 1s   # poll forever
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms"
	"streamkf/internal/telemetry"
)

func main() {
	var (
		server   = flag.String("server", "127.0.0.1:7474", "dkf-server address")
		query    = flag.String("query", "", "query id to evaluate (comma-separate for several)")
		seq      = flag.Int("seq", 0, "reading index to evaluate at")
		watch    = flag.Duration("watch", 0, "poll interval (0 = ask once)")
		logLevel = flag.String("log-level", "info", "log level: debug|info|warn|error")
	)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkf-query: %v\n", err)
		os.Exit(2)
	}
	// Diagnostics go to stderr via slog; query answers stay on stdout so
	// the output remains pipeable.
	logger := telemetry.NewLogger(os.Stderr, level)

	if *query == "" {
		logger.Error("-query is required")
		os.Exit(2)
	}
	ids := strings.Split(*query, ",")

	qc, err := dsms.DialQuery(*server)
	if err != nil {
		logger.Error("dial failed", "server", *server, "err", err)
		os.Exit(1)
	}
	defer qc.Close()

	ask := func(at int) {
		for _, id := range ids {
			id = strings.TrimSpace(id)
			vals, err := qc.Ask(id, at)
			if err != nil {
				// A dead connection ends the session; a per-query
				// error (unknown id, no bootstrap yet) does not.
				if errors.Is(err, core.ErrPeerClosed) || errors.Is(err, core.ErrTruncated) {
					logger.Error("connection lost", "err", err)
					os.Exit(1)
				}
				logger.Warn("query error", "query", id, "seq", at, "err", err)
				continue
			}
			fmt.Printf("%-16s seq=%-8d %v\n", id, at, vals)
		}
	}

	if *watch <= 0 {
		ask(*seq)
		return
	}
	at := *seq
	for {
		ask(at)
		time.Sleep(*watch)
		at++
	}
}
