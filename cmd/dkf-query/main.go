// Command dkf-query asks a running dkf-server for continuous query
// answers.
//
// Usage:
//
//	dkf-query -server 127.0.0.1:7474 -query q1 -seq 3999
//	dkf-query -server 127.0.0.1:7474 -query q1 -watch 1s   # poll forever
//
// With -trace N (and the server's admin address in -admin) each answer
// is followed by the decision trail that produced it: the stream's
// divergence audit and the last N flight-recorder events, fetched from
// /tracez/stream/{query}. The server must run -trace.
//
//	dkf-query -server 127.0.0.1:7474 -admin 127.0.0.1:7475 -query q1 -seq 3999 -trace 8
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"streamkf/internal/core"
	"streamkf/internal/dsms"
	"streamkf/internal/telemetry"
)

func main() {
	var (
		server   = flag.String("server", "127.0.0.1:7474", "dkf-server address")
		query    = flag.String("query", "", "query id to evaluate (comma-separate for several)")
		seq      = flag.Int("seq", 0, "reading index to evaluate at")
		watch    = flag.Duration("watch", 0, "poll interval (0 = ask once)")
		logLevel = flag.String("log-level", "info", "log level: debug|info|warn|error")
		admin    = flag.String("admin", "127.0.0.1:7475", "dkf-server admin HTTP address (for -trace)")
		traceN   = flag.Int("trace", 0, "print the last N decision-trail events behind each answer (0 = off)")
	)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkf-query: %v\n", err)
		os.Exit(2)
	}
	// Diagnostics go to stderr via slog; query answers stay on stdout so
	// the output remains pipeable.
	logger := telemetry.NewLogger(os.Stderr, level)

	if *query == "" {
		logger.Error("-query is required")
		os.Exit(2)
	}
	ids := strings.Split(*query, ",")

	qc, err := dsms.DialQuery(*server)
	if err != nil {
		logger.Error("dial failed", "server", *server, "err", err)
		os.Exit(1)
	}
	defer qc.Close()

	ask := func(at int) {
		for _, id := range ids {
			id = strings.TrimSpace(id)
			vals, err := qc.Ask(id, at)
			if err != nil {
				// A dead connection ends the session; a per-query
				// error (unknown id, no bootstrap yet) does not.
				if errors.Is(err, core.ErrPeerClosed) || errors.Is(err, core.ErrTruncated) {
					logger.Error("connection lost", "err", err)
					os.Exit(1)
				}
				logger.Warn("query error", "query", id, "seq", at, "err", err)
				continue
			}
			fmt.Printf("%-16s seq=%-8d %v\n", id, at, vals)
			if *traceN > 0 {
				if err := printTrail(*admin, id, *traceN); err != nil {
					logger.Warn("trace fetch failed", "query", id, "err", err)
				}
			}
		}
	}

	if *watch <= 0 {
		ask(*seq)
		return
	}
	at := *seq
	for {
		ask(at)
		time.Sleep(*watch)
		at++
	}
}

// printTrail fetches the decision trail backing a query's answers from
// the admin endpoint and prints the divergence audit plus the last n
// flight-recorder events.
func printTrail(admin, queryID string, n int) error {
	resp, err := http.Get("http://" + admin + "/tracez/stream/" + queryID)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /tracez/stream/%s: %s", queryID, resp.Status)
	}
	var st dsms.StreamTrace
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	if !st.Enabled {
		return errors.New("tracing is disabled on the server (run dkf-server -trace)")
	}
	a := st.Audit
	fmt.Printf("  audit: source=%s applies=%d max|innov|=%.4g at seq %d (%.2fx δ) under-δ sends=%d\n",
		st.SourceID, a.Applies, a.MaxAbsInnovation, a.MaxSeq, a.MaxOverDelta, a.UnderDeltaSends)
	events := st.Events
	if len(events) > n {
		events = events[len(events)-n:]
	}
	for _, e := range events {
		line := fmt.Sprintf("  trace=%d seq=%d %s", e.TraceID, e.Seq, e.Kind)
		if e.Decision != "" {
			line += " " + e.Decision
		}
		if e.Kind == "decision" {
			line += fmt.Sprintf(" raw=%.4g smoothed=%.4g pred=%.4g residual=%.4g δ=%.4g", e.Raw, e.Value, e.Pred, e.Residual, e.Delta)
			if e.NIS != 0 {
				line += fmt.Sprintf(" nis=%.4g", e.NIS)
			}
		} else if e.Kind == "apply" {
			line += fmt.Sprintf(" value=%.4g |innov|=%.4g", e.Value, e.Residual)
		} else if e.Aux != 0 {
			line += fmt.Sprintf(" bytes=%d", e.Aux)
		}
		fmt.Println(line)
	}
	return nil
}
