// Command dkf-server runs the central DSMS node over TCP: it registers
// the continuous queries given on the command line, listens for source
// agents (see cmd/dkf-source) and answers query clients.
//
// Usage:
//
//	dkf-server -listen 127.0.0.1:7474 \
//	    -query q1:sensor-a:linear:2.0 \
//	    -query q2:sensor-b:constant:5.0:1e-7
//
// Each -query flag is id:source:model:delta[:F]. Models come from the
// default catalog: constant, linear, acceleration, jerk, constant2d,
// linear2d.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"streamkf/internal/cql"
	"streamkf/internal/dsms"
	"streamkf/internal/stream"
)

type stringsFlag []string

func (s *stringsFlag) String() string { return fmt.Sprint(*s) }

// Set appends one repeated flag value.
func (s *stringsFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

type queryFlags []stream.Query

func (q *queryFlags) String() string { return fmt.Sprint(*q) }

func (q *queryFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 4 && len(parts) != 5 {
		return fmt.Errorf("want id:source:model:delta[:F], got %q", s)
	}
	delta, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return fmt.Errorf("bad delta in %q: %v", s, err)
	}
	var f float64
	if len(parts) == 5 {
		f, err = strconv.ParseFloat(parts[4], 64)
		if err != nil {
			return fmt.Errorf("bad F in %q: %v", s, err)
		}
	}
	*q = append(*q, stream.Query{ID: parts[0], SourceID: parts[1], Model: parts[2], Delta: delta, F: f})
	return nil
}

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7474", "address to listen on")
		dt         = flag.Float64("dt", 1.0, "sampling interval assumed by the model catalog")
		stats      = flag.Duration("stats", 10*time.Second, "stats reporting interval (0 disables)")
		maxFrame   = flag.Int("maxframe", 0, "max accepted wire frame size in bytes (0 = 1 MiB default)")
		queries    queryFlags
		statements stringsFlag
	)
	flag.Var(&queries, "query", "continuous query id:source:model:delta[:F] (repeatable)")
	flag.Var(&statements, "cql", `CQL statement, e.g. "SELECT AVG FROM z1, z2 MODEL linear WITHIN 50 AS load" (repeatable)`)
	flag.Parse()

	if len(queries) == 0 && len(statements) == 0 {
		fmt.Fprintln(os.Stderr, "dkf-server: at least one -query or -cql is required")
		os.Exit(2)
	}

	catalog := dsms.DefaultCatalog(*dt)
	server := dsms.NewServer(catalog)
	for _, q := range queries {
		if err := server.Register(q); err != nil {
			fmt.Fprintf(os.Stderr, "dkf-server: register %s: %v\n", q.ID, err)
			os.Exit(2)
		}
	}
	for _, stmt := range statements {
		name, err := cql.Install(server, stmt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dkf-server: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("installed CQL query %q\n", name)
	}

	ts, err := dsms.NewTCPServerOptions(server, *listen, dsms.ServerOptions{MaxFrame: *maxFrame})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkf-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dkf-server listening on %s, models: %s\n", ts.Addr(), strings.Join(catalog.Names(), ", "))
	for _, q := range queries {
		fmt.Printf("  query %s over source %s: model=%s δ=%g F=%g\n", q.ID, q.SourceID, q.Model, q.Delta, q.F)
	}

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				for _, st := range server.Stats() {
					fmt.Printf("source %-12s queries=%d updates=%d bytes=%d seq=%d\n",
						st.SourceID, st.Queries, st.Updates, st.Bytes, st.Seq)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- ts.Serve() }()
	select {
	case <-sig:
		fmt.Println("\ndkf-server: shutting down")
		ts.Close()
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "dkf-server: %v\n", err)
			os.Exit(1)
		}
	}
}
