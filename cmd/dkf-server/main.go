// Command dkf-server runs the central DSMS node over TCP: it registers
// the continuous queries given on the command line, listens for source
// agents (see cmd/dkf-source) and answers query clients. A second HTTP
// listener (-admin) exposes the observability surface: /metrics
// (Prometheus text), /healthz, /streamz (per-stream JSON incl. filter
// health), /tracez (with -trace), and /debug/pprof.
//
// Usage:
//
//	dkf-server -listen 127.0.0.1:7474 -admin 127.0.0.1:7475 \
//	    -query q1:sensor-a:linear:2.0 \
//	    -query q2:sensor-b:constant:5.0:1e-7
//
// Each -query flag is id:source:model:delta[:F]. Models come from the
// default catalog: constant, linear, acceleration, jerk, constant2d,
// linear2d.
//
// With -udp the server additionally accepts the connectionless datagram
// transport on that address, feeding the shard-per-core ingest engine
// (-shards, -ring tune it) — the 100k-source fan-in path. Sources pick
// it with dkf-source -transport udp.
//
// With -data-dir the server is durable: every registration and update
// is written to a write-ahead log and periodically checkpointed, so a
// restart with the same -data-dir recovers the exact filter state and
// reconnecting sources resume without re-bootstrapping. -fsync picks
// the durability/latency trade-off (always | interval | off).
//
// With -trace every stream gets a flight recorder: per-update decision
// trails and the divergence audit become queryable at /tracez and
// /tracez/stream/{id}, and tracing sources (dkf-source -trace) ship
// their suppression evidence alongside each update.
//
// With -shard-index the server runs as one shard of a dkf-router
// cluster: it accepts forwarded updates, answers partial aggregates,
// and reports the cluster block on /streamz. See cmd/dkf-router.
//
// With -selfmon the server watches itself: periodic registry snapshots
// feed a metrics history ring (-history-window / -history-every tune
// it), ~10 health signals run through the same Kalman filters the data
// path uses, and /healthz becomes a real probe (ok|degraded|unhealthy,
// 503 when unhealthy, JSON reasons with ?verbose=1). /statusz renders
// the live dashboard and /metricsz serves windowed rates as JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"streamkf/internal/cql"
	"streamkf/internal/dsms"
	"streamkf/internal/stream"
	"streamkf/internal/telemetry"
	"streamkf/internal/trace"
	"streamkf/internal/wal"
)

type stringsFlag []string

func (s *stringsFlag) String() string { return fmt.Sprint(*s) }

// Set appends one repeated flag value.
func (s *stringsFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

type queryFlags []stream.Query

func (q *queryFlags) String() string { return fmt.Sprint(*q) }

func (q *queryFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 4 && len(parts) != 5 {
		return fmt.Errorf("want id:source:model:delta[:F], got %q", s)
	}
	delta, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return fmt.Errorf("bad delta in %q: %v", s, err)
	}
	var f float64
	if len(parts) == 5 {
		f, err = strconv.ParseFloat(parts[4], 64)
		if err != nil {
			return fmt.Errorf("bad F in %q: %v", s, err)
		}
	}
	*q = append(*q, stream.Query{ID: parts[0], SourceID: parts[1], Model: parts[2], Delta: delta, F: f})
	return nil
}

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7474", "address to listen on")
		admin      = flag.String("admin", "127.0.0.1:7475", "admin HTTP address for /metrics, /healthz, /streamz, /debug/pprof (empty disables)")
		logLevel   = flag.String("log-level", "info", "log level: debug|info|warn|error")
		dt         = flag.Float64("dt", 1.0, "sampling interval assumed by the model catalog")
		stats      = flag.Duration("stats", 10*time.Second, "stats reporting interval (0 disables)")
		maxFrame   = flag.Int("maxframe", 0, "max accepted wire frame size in bytes (0 = 1 MiB default)")
		udpListen  = flag.String("udp", "", "also accept the connectionless datagram transport on this address (empty disables)")
		shards     = flag.Int("shards", 0, "ingest engine shard count for -udp; 0 = GOMAXPROCS")
		ring       = flag.Int("ring", 0, "per-shard SPSC ring capacity for -udp (0 = default)")
		lanes      = flag.Int("lanes", 0, "UDP reader lanes sharing the -udp socket; 0 = min(4, GOMAXPROCS)")
		rxBatch    = flag.Int("rxbatch", 0, "max datagrams per receive syscall on -udp (recvmmsg; 0 = 32)")
		dataDir    = flag.String("data-dir", "", "directory for the write-ahead log and checkpoints (empty = non-durable)")
		fsync      = flag.String("fsync", "interval", "WAL fsync policy: always|interval|off")
		fsyncEvery = flag.Duration("fsync-interval", 0, "flush period for -fsync interval (0 = 50ms default)")
		ckptEvery  = flag.Int("checkpoint-every", 10000, "checkpoint after this many logged updates (0 disables automatic checkpoints)")
		traceOn    = flag.Bool("trace", false, "record per-update decision trails, served at /tracez")
		traceRing  = flag.Int("trace-ring", 0, "flight-recorder ring size per stream (0 = 256 default)")
		traceSamp  = flag.Int("trace-sample", 0, "record the routine trail for 1-in-N updates (0/1 = all; decisions are always kept)")
		selfmon    = flag.Bool("selfmon", false, "self-monitoring: metrics history ring, Kalman-filtered health verdicts at /healthz, /statusz dashboard, /metricsz windowed rates")
		shardIndex = flag.Int("shard-index", -1, "shard index when serving behind dkf-router (-1 = standalone); adds the cluster block to /streamz")
		histWindow = flag.Duration("history-window", 2*time.Minute, "metrics history retained for -selfmon windowed queries")
		histEvery  = flag.Duration("history-every", time.Second, "registry snapshot cadence for -selfmon")
		queries    queryFlags
		statements stringsFlag
	)
	flag.Var(&queries, "query", "continuous query id:source:model:delta[:F] (repeatable)")
	flag.Var(&statements, "cql", `CQL statement, e.g. "SELECT AVG FROM z1, z2 MODEL linear WITHIN 50 AS load" (repeatable)`)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkf-server: %v\n", err)
		os.Exit(2)
	}
	logger := telemetry.NewLogger(os.Stderr, level)

	// A shard behind a dkf-router may start with no local queries: the
	// router registers them remotely over the cluster protocol.
	if len(queries) == 0 && len(statements) == 0 && *shardIndex < 0 {
		logger.Error("at least one -query or -cql is required (unless -shard-index is set)")
		os.Exit(2)
	}

	catalog := dsms.DefaultCatalog(*dt)
	var server *dsms.Server
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			logger.Error("bad -fsync", "err", err)
			os.Exit(2)
		}
		server, err = dsms.Open(catalog, *dataDir, dsms.DurabilityOptions{
			Sync:            policy,
			SyncEvery:       *fsyncEvery,
			CheckpointEvery: *ckptEvery,
		})
		if err != nil {
			logger.Error("recovery failed", "data_dir", *dataDir, "err", err)
			os.Exit(1)
		}
		logger.Info("durable server open", "data_dir", *dataDir, "fsync", policy.String())
	} else {
		server = dsms.NewServer(catalog)
	}
	if *traceOn {
		server.EnableTracing(trace.Options{RingSize: *traceRing, Sample: *traceSamp})
		logger.Info("tracing enabled", "ring", *traceRing, "sample", *traceSamp)
	}
	if *selfmon {
		mon, err := server.EnableSelfMon(dsms.SelfMonOptions{
			Window: *histWindow,
			Every:  *histEvery,
		})
		if err != nil {
			logger.Error("self-monitoring failed", "err", err)
			os.Exit(2)
		}
		mon.Start()
		logger.Info("self-monitoring enabled",
			"window", *histWindow, "every", *histEvery,
			"signals", len(mon.Signals()))
	}
	if *shardIndex >= 0 {
		server.SetShardInfo(*shardIndex, 0)
		logger.Info("cluster shard mode", "shard_index", *shardIndex)
	}
	for _, q := range queries {
		if server.HasQuery(q.ID) {
			// Recovered from the checkpoint/WAL: re-registering would be
			// rejected as a duplicate, and its config is already in force.
			logger.Info("query recovered", "query", q.ID, "source", q.SourceID)
			continue
		}
		if err := server.Register(q); err != nil {
			logger.Error("register query failed", "query", q.ID, "err", err)
			os.Exit(2)
		}
		logger.Info("query registered", "query", q.ID, "source", q.SourceID, "model", q.Model, "delta", q.Delta, "F", q.F)
	}
	for _, stmt := range statements {
		name, err := cql.Install(server, stmt)
		if err != nil {
			logger.Error("CQL install failed", "statement", stmt, "err", err)
			os.Exit(2)
		}
		logger.Info("CQL query installed", "query", name)
	}

	ts, err := dsms.NewTCPServerOptions(server, *listen, dsms.ServerOptions{MaxFrame: *maxFrame})
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err)
		os.Exit(1)
	}
	logger.Info("dkf-server listening", "addr", ts.Addr(), "models", strings.Join(catalog.Names(), ","))

	var us *dsms.UDPServer
	if *udpListen != "" {
		us, err = dsms.NewUDPServer(server, *udpListen, dsms.UDPServerOptions{
			Lanes:   *lanes,
			RxBatch: *rxBatch,
			Engine:  dsms.EngineOptions{Shards: *shards, RingSize: *ring},
		})
		if err != nil {
			logger.Error("udp listen failed", "addr", *udpListen, "err", err)
			os.Exit(1)
		}
		go func() {
			if err := us.Serve(); err != nil {
				logger.Error("udp serve failed", "err", err)
			}
		}()
		logger.Info("datagram transport listening", "addr", us.Addr(), "shards", server.Engine().Shards(), "lanes", us.Lanes())
	}

	var adminSrv *dsms.AdminServer
	if *admin != "" {
		adminSrv, err = dsms.ServeAdmin(server, *admin, logger)
		if err != nil {
			logger.Error("admin listen failed", "addr", *admin, "err", err)
			os.Exit(1)
		}
	}

	statsStop := make(chan struct{})
	if *stats > 0 {
		go func() {
			t := time.NewTicker(*stats)
			defer t.Stop()
			for {
				select {
				case <-statsStop:
					return
				case <-t.C:
					for _, st := range server.Stats() {
						logger.Info("source stats",
							"source", st.SourceID, "queries", st.Queries,
							"updates", st.Updates, "suppressed", st.Suppressed,
							"suppression_pct", fmt.Sprintf("%.1f", st.SuppressionPct),
							"bytes", st.Bytes, "seq", st.Seq,
							"nis", st.NIS, "healthy", st.Healthy)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- ts.Serve() }()
	shutdown := func() {
		close(statsStop)
		if us != nil {
			if err := us.Close(); err != nil {
				logger.Warn("udp close", "err", err)
			}
			// Drain in-flight ring entries into the filters (and the WAL,
			// when durable) before the final checkpoint below.
			server.Engine().Close()
		}
		if adminSrv != nil {
			if err := adminSrv.Close(); err != nil {
				logger.Warn("admin close", "err", err)
			}
		}
		// Final checkpoint + WAL close; a no-op without -data-dir.
		if err := server.Close(); err != nil {
			logger.Error("durable close", "err", err)
		}
	}
	select {
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
		ts.Close()
		<-done
		shutdown()
	case err := <-done:
		shutdown()
		if err != nil {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	}
	logger.Info("dkf-server stopped")
}
