// Command dkf-router fronts a sharded DSMS cluster. Sources connect to
// it exactly as they would to a dkf-server — same wire protocol, same
// dkf-source binary, zero changes — and the router forwards each stream
// to its owning shard (consistent-hash placement with virtual nodes),
// relays the shard's acks back, splits cross-shard aggregate queries
// into per-shard partials and merges the answers, and migrates live
// streams between shards on demand.
//
// Usage:
//
//	dkf-server -listen 127.0.0.1:7601 -shard-index 0 -query q1:sensor-a:linear:2.0 &
//	dkf-server -listen 127.0.0.1:7602 -shard-index 1 -query q2:sensor-b:linear:2.0 &
//	dkf-router -listen 127.0.0.1:7474 -admin 127.0.0.1:7475 \
//	    -shard 127.0.0.1:7601 -shard 127.0.0.1:7602 \
//	    -agg load:avg:linear:4.0:sensor-a,sensor-b
//
// Each -query flag is id:source:model:delta[:F], registered on the
// stream's owning shard. Each -agg flag is id:func:model:delta:src1,src2,...[:F]
// and becomes a cross-shard aggregate: every shard owning a member runs
// a partial at its slice of the Δ budget, and the router merges the
// partials — bit-identical to a single server evaluating the whole
// aggregate (see DESIGN.md §17).
//
// The -admin listener serves /metrics (per-shard forward counters and
// latency histograms, connection gauges), /ringz (the placement ring as
// JSON: epochs, pins, shard liveness), /healthz (the rolled-up cluster
// verdict), /statusz and /clusterz (the federated fleet view — point
// each -shard-admin flag at the matching shard's admin address, in
// -shard order), /eventz (the topology event log), and /debug/pprof.
//
// With -trace the router records fwd_rx/fwd_tx/fwd_ack flight-recorder
// events for traced forwards and serves /tracez plus
// /tracez/stream/{id}, which splices the router's hop events into the
// owning shard's trail (fetched from its -shard-admin endpoint) for
// the full source→router→shard chain. Tracing also needs -trace on
// the shards and a traced source.
//
// With -udp the router also accepts the connectionless datagram
// transport and forwards those updates over the pooled shard
// connections. With -reconnect-every the router probes lost shards and
// resynchronises them (re-registers queries, replays unacked forwards
// from the shard's recovered ResumeSeq) when they come back.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"streamkf/internal/dsms"
	"streamkf/internal/dsms/cluster"
	"streamkf/internal/stream"
	"streamkf/internal/telemetry"
)

type stringsFlag []string

func (s *stringsFlag) String() string { return fmt.Sprint(*s) }

// Set appends one repeated flag value.
func (s *stringsFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func parseQuery(s string) (stream.Query, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 && len(parts) != 5 {
		return stream.Query{}, fmt.Errorf("want id:source:model:delta[:F], got %q", s)
	}
	delta, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return stream.Query{}, fmt.Errorf("bad delta in %q: %v", s, err)
	}
	var f float64
	if len(parts) == 5 {
		if f, err = strconv.ParseFloat(parts[4], 64); err != nil {
			return stream.Query{}, fmt.Errorf("bad F in %q: %v", s, err)
		}
	}
	return stream.Query{ID: parts[0], SourceID: parts[1], Model: parts[2], Delta: delta, F: f}, nil
}

func parseAgg(s string) (dsms.AggregateQuery, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 5 && len(parts) != 6 {
		return dsms.AggregateQuery{}, fmt.Errorf("want id:func:model:delta:src1,src2,...[:F], got %q", s)
	}
	delta, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return dsms.AggregateQuery{}, fmt.Errorf("bad delta in %q: %v", s, err)
	}
	var f float64
	if len(parts) == 6 {
		if f, err = strconv.ParseFloat(parts[5], 64); err != nil {
			return dsms.AggregateQuery{}, fmt.Errorf("bad F in %q: %v", s, err)
		}
	}
	return dsms.AggregateQuery{
		ID: parts[0], Func: dsms.AggFunc(parts[1]), Model: parts[2],
		Delta: delta, SourceIDs: strings.Split(parts[4], ","), F: f,
	}, nil
}

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7474", "source-facing address to listen on")
		admin       = flag.String("admin", "127.0.0.1:7475", "admin HTTP address for /metrics, /ringz, /healthz, /debug/pprof (empty disables)")
		udpListen   = flag.String("udp", "", "also accept the connectionless datagram transport on this address (empty disables)")
		logLevel    = flag.String("log-level", "info", "log level: debug|info|warn|error")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per shard on the placement ring (0 = 64)")
		maxFrame    = flag.Int("maxframe", 0, "max accepted wire frame size in bytes (0 = 1 MiB default)")
		beta        = flag.Float64("agg-suppress", 0, "cluster budget split β in [0,1): shards run partials at (1-β)Δ, the router re-suppresses within βΔ; 0 reproduces single-server answers exactly")
		reconnect   = flag.Duration("reconnect-every", 2*time.Second, "probe interval for lost shards (0 disables auto-reconnect)")
		doTrace     = flag.Bool("trace", false, "record forwarding flight-recorder events and serve /tracez on the admin listener")
		traceRing   = flag.Int("trace-ring", 0, "per-route trace ring size (0 = default)")
		eventCap    = flag.Int("event-cap", 0, "topology event log capacity (0 = 256)")
		shards      stringsFlag
		shardAdmins stringsFlag
		queries     stringsFlag
		aggs        stringsFlag
	)
	flag.Var(&shards, "shard", "shard server address, repeatable; order defines shard indices")
	flag.Var(&shardAdmins, "shard-admin", "shard admin HTTP address, repeatable, in -shard order; feeds /clusterz and trail splicing")
	flag.Var(&queries, "query", "continuous query id:source:model:delta[:F] (repeatable)")
	flag.Var(&aggs, "agg", "cross-shard aggregate id:func:model:delta:src1,src2,...[:F] (repeatable)")
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dkf-router: %v\n", err)
		os.Exit(2)
	}
	logger := telemetry.NewLogger(os.Stderr, level)
	if len(shards) == 0 {
		logger.Error("at least one -shard is required")
		os.Exit(2)
	}

	if len(shardAdmins) > 0 && len(shardAdmins) != len(shards) {
		logger.Error("-shard-admin count must match -shard count", "shards", len(shards), "admins", len(shardAdmins))
		os.Exit(2)
	}

	router, err := cluster.NewRouter(*listen, shards, cluster.Options{
		VNodes:      *vnodes,
		MaxFrame:    *maxFrame,
		AggSuppress: *beta,
		Logger:      logger,
		Trace:       *doTrace,
		TraceRing:   *traceRing,
		ShardAdmins: shardAdmins,
		EventCap:    *eventCap,
	})
	if err != nil {
		logger.Error("router start failed", "err", err)
		os.Exit(1)
	}
	logger.Info("dkf-router listening", "addr", router.Addr(), "shards", len(shards), "vnodes", *vnodes)

	for _, s := range queries {
		q, err := parseQuery(s)
		if err != nil {
			logger.Error("bad -query", "err", err)
			os.Exit(2)
		}
		if err := router.RegisterQuery(q); err != nil {
			logger.Error("register query failed", "query", q.ID, "err", err)
			os.Exit(1)
		}
		logger.Info("query registered", "query", q.ID, "source", q.SourceID, "shard", router.Ring().Owner(q.SourceID))
	}
	for _, s := range aggs {
		q, err := parseAgg(s)
		if err != nil {
			logger.Error("bad -agg", "err", err)
			os.Exit(2)
		}
		if err := router.RegisterAggregate(q); err != nil {
			logger.Error("register aggregate failed", "query", q.ID, "err", err)
			os.Exit(1)
		}
		logger.Info("aggregate registered", "query", q.ID, "func", q.Func, "sources", len(q.SourceIDs))
	}

	var adminSrv *cluster.AdminServer
	if *admin != "" {
		adminSrv, err = cluster.ServeAdmin(router, *admin, logger)
		if err != nil {
			logger.Error("admin listen failed", "addr", *admin, "err", err)
			os.Exit(1)
		}
		logger.Info("admin listening", "addr", adminSrv.Addr())
	}

	if *udpListen != "" {
		go func() {
			if err := router.ServeUDP(*udpListen); err != nil {
				logger.Error("udp serve failed", "err", err)
			}
		}()
		logger.Info("datagram transport listening", "addr", *udpListen)
	}

	stopProbe := make(chan struct{})
	if *reconnect > 0 {
		go func() {
			t := time.NewTicker(*reconnect)
			defer t.Stop()
			for {
				select {
				case <-stopProbe:
					return
				case <-t.C:
					for _, idx := range router.DeadShards() {
						if err := router.ReconnectShard(idx); err != nil {
							logger.Debug("shard still down", "shard", idx, "err", err)
						} else {
							logger.Info("shard resynchronised", "shard", idx)
						}
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- router.Serve() }()
	select {
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
	case err := <-done:
		if err != nil {
			logger.Error("serve failed", "err", err)
		}
	}
	close(stopProbe)
	if adminSrv != nil {
		adminSrv.Close()
	}
	router.Close()
	logger.Info("dkf-router stopped")
}
