// Benchmarks for the extension experiments (the paper's §6 future-work
// items) and the end-to-end DSMS paths.
package streamkf_test

import (
	"testing"

	"streamkf"
	"streamkf/internal/core"
	"streamkf/internal/experiments"
	"streamkf/internal/gen"
	"streamkf/internal/stream"
	"streamkf/internal/synopsis"
)

func BenchmarkExtensionAdaptiveSampling(b *testing.B) {
	b.ReportAllocs()
	data := gen.MovingObject(gen.DefaultMovingObject())
	cfg := core.Config{SourceID: "obj", Model: mustModel(), Delta: 3}
	var m core.SampledMetrics
	for i := 0; i < b.N; i++ {
		sampler, err := core.NewAdaptiveSampler(cfg.Delta, 0.3, 8)
		if err != nil {
			b.Fatal(err)
		}
		sess, err := core.NewSampledSession(cfg, sampler)
		if err != nil {
			b.Fatal(err)
		}
		m, err = sess.Run(data)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.PercentSensed(), "%sensed")
	b.ReportMetric(m.PercentUpdates(), "%updates")
}

func mustModel() streamkf.Model { return streamkf.LinearModel(2, 0.1, 0.05, 0.05) }

func BenchmarkExtensionModelSwitching(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AdaptSummary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionSynopsisStore(b *testing.B) {
	data := gen.PowerLoad(gen.DefaultPowerLoad())
	m := streamkf.LinearModel(1, 1, 0.05, 0.05)
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		store, err := synopsis.New(m, 50)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.AppendAll(data); err != nil {
			b.Fatal(err)
		}
		ratio = store.CompressionRatio()
	}
	b.ReportMetric(100*ratio, "%kept")
}

func BenchmarkExtensionLossyRetry(b *testing.B) {
	b.ReportAllocs()
	data := gen.RandomWalk(2000, 0, 3, 5)
	cfg := core.Config{SourceID: "s", Model: streamkf.LinearModel(1, 1, 0.05, 0.05), Delta: 2}
	for i := 0; i < b.N; i++ {
		sess, err := core.NewSessionWithTransport(cfg, func(direct core.Transport) (core.Transport, error) {
			lossy, err := core.NewLossyTransport(direct, 0.2, core.LossDetect, 11)
			if err != nil {
				return nil, err
			}
			return core.NewReliableTransport(lossy, 100)
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Run(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDSMSInProcessPipeline(b *testing.B) {
	b.ReportAllocs()
	data := gen.Ramp(1000, 0, 1.5, 0.05, 13)
	for i := 0; i < b.N; i++ {
		catalog := streamkf.DefaultCatalog(1)
		server := streamkf.NewDSMSServer(catalog)
		if err := server.Register(stream.Query{ID: "q", SourceID: "s", Delta: 3, Model: "linear"}); err != nil {
			b.Fatal(err)
		}
		cfg, err := server.InstallFor("s")
		if err != nil {
			b.Fatal(err)
		}
		agent, err := streamkf.NewAgent(cfg, core.TransportFunc(func(u core.Update) error {
			return server.HandleUpdate(u)
		}))
		if err != nil {
			b.Fatal(err)
		}
		if err := agent.Run(stream.NewSliceSource(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationJosephForm compares the standard covariance update
// with the Joseph stabilized form (DESIGN.md §6).
func BenchmarkAblationJosephForm(b *testing.B) {
	run := func(b *testing.B, joseph bool) {
		m := streamkf.LinearModel(1, 1, 0.05, 0.05)
		cfg := streamkf.FilterConfig{Phi: m.Phi, H: m.H, Q: m.Q, R: m.R, X0: m.Init([]float64{0}), JosephForm: joseph}
		f, err := streamkf.NewFilter(cfg)
		if err != nil {
			b.Fatal(err)
		}
		z := streamkf.MatrixFromRows([][]float64{{1}})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.Step(z); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("standard", func(b *testing.B) { run(b, false) })
	b.Run("joseph", func(b *testing.B) { run(b, true) })
}

// BenchmarkIMMStep measures the per-reading cost of the soft-mixture
// estimator versus a single filter (the N-model price of avoiding hard
// switches).
func BenchmarkIMMStep(b *testing.B) {
	mk := func(phi [][]float64) *streamkf.Filter {
		f, err := streamkf.NewFilter(streamkf.FilterConfig{
			Phi: func(int) *streamkf.Matrix { return streamkf.MatrixFromRows(phi) },
			H:   streamkf.MatrixFromRows([][]float64{{1, 0}}),
			Q:   streamkf.MatrixFromRows([][]float64{{0.01, 0}, {0, 0.01}}),
			R:   streamkf.MatrixFromRows([][]float64{{0.25}}),
			X0:  streamkf.MatrixFromRows([][]float64{{0}, {0}}),
		})
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	im, err := streamkf.NewIMM(streamkf.IMMConfig{Filters: []*streamkf.Filter{
		mk([][]float64{{1, 0}, {0, 0}}),
		mk([][]float64{{1, 1}, {0, 1}}),
	}})
	if err != nil {
		b.Fatal(err)
	}
	z := streamkf.MatrixFromRows([][]float64{{3}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := im.Step(z); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistoryReplay measures answering a historical range from the
// update-log synopsis.
func BenchmarkHistoryReplay(b *testing.B) {
	catalog := streamkf.DefaultCatalog(1)
	server := streamkf.NewDSMSServer(catalog)
	if err := server.Register(stream.Query{ID: "q", SourceID: "s", Delta: 2, Model: "linear"}); err != nil {
		b.Fatal(err)
	}
	if err := server.EnableHistory("s"); err != nil {
		b.Fatal(err)
	}
	cfg, err := server.InstallFor("s")
	if err != nil {
		b.Fatal(err)
	}
	agent, err := streamkf.NewAgent(cfg, core.TransportFunc(server.HandleUpdate))
	if err != nil {
		b.Fatal(err)
	}
	if err := agent.Run(stream.NewSliceSource(gen.RandomWalk(4000, 0, 1.5, 9))); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.HistoryRange("q", 1000, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCQLParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := streamkf.ParseCQL("SELECT AVG FROM z1, z2, z3 MODEL linear WITHIN 50 SMOOTH 1e-7 AS load"); err != nil {
			b.Fatal(err)
		}
	}
}
