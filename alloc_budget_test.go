// Allocation-budget regression gates for the hot paths pinned by
// BENCH_BASELINE.json: the Kalman predict/correct step must stay
// allocation-free even as instrumentation accretes around it. CI runs
// these as plain tests so a regression fails the build instead of
// silently drifting a benchmark number.
package streamkf_test

import (
	"encoding/json"
	"os"
	"testing"

	"streamkf/internal/mat"
	"streamkf/internal/model"
)

func filterStepBudgets(t *testing.T) map[string]int64 {
	t.Helper()
	raw, err := os.ReadFile("BENCH_BASELINE.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks map[string]struct {
			AllocsPerOp int64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse BENCH_BASELINE.json: %v", err)
	}
	out := make(map[string]int64, len(doc.Benchmarks))
	for name, b := range doc.Benchmarks {
		out[name] = b.AllocsPerOp
	}
	return out
}

func TestFilterStepAllocBudget(t *testing.T) {
	budgets := filterStepBudgets(t)
	cases := []struct {
		name string
		m    model.Model
		z    []float64
	}{
		{"BenchmarkFilterStep/scalar", model.Constant(1, 0.05, 0.05), []float64{1.5}},
		{"BenchmarkFilterStep/linear1d", model.Linear(1, 1, 0.05, 0.05), []float64{1.5}},
		{"BenchmarkFilterStep/linear2d", model.Linear(2, 0.1, 0.05, 0.05), []float64{1.5, -0.5}},
	}
	for _, tc := range cases {
		budget, ok := budgets[tc.name]
		if !ok {
			t.Fatalf("BENCH_BASELINE.json has no %s entry", tc.name)
		}
		f, err := tc.m.NewFilter(tc.z)
		if err != nil {
			t.Fatal(err)
		}
		z := mat.Vec(tc.z...)
		// Warm up so one-time lazy allocations do not count.
		for i := 0; i < 3; i++ {
			if err := f.Step(z); err != nil {
				t.Fatal(err)
			}
		}
		got := int64(testing.AllocsPerRun(200, func() {
			if err := f.Step(z); err != nil {
				t.Fatal(err)
			}
		}))
		if got > budget {
			t.Errorf("%s allocates %d/op, budget %d/op (BENCH_BASELINE.json)", tc.name, got, budget)
		}
	}
}
