// Allocation-budget regression gates for the hot paths pinned by
// BENCH_BASELINE.json: the Kalman predict/correct step must stay
// allocation-free even as instrumentation accretes around it. CI runs
// these as plain tests so a regression fails the build instead of
// silently drifting a benchmark number.
package streamkf_test

import (
	"encoding/json"
	"os"
	"testing"

	"streamkf/internal/core"
	"streamkf/internal/mat"
	"streamkf/internal/model"
	"streamkf/internal/stream"
	"streamkf/internal/trace"
)

func filterStepBudgets(t *testing.T) map[string]int64 {
	t.Helper()
	raw, err := os.ReadFile("BENCH_BASELINE.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks map[string]struct {
			AllocsPerOp int64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse BENCH_BASELINE.json: %v", err)
	}
	out := make(map[string]int64, len(doc.Benchmarks))
	for name, b := range doc.Benchmarks {
		out[name] = b.AllocsPerOp
	}
	return out
}

func TestFilterStepAllocBudget(t *testing.T) {
	budgets := filterStepBudgets(t)
	cases := []struct {
		name string
		m    model.Model
		z    []float64
	}{
		{"BenchmarkFilterStep/scalar", model.Constant(1, 0.05, 0.05), []float64{1.5}},
		{"BenchmarkFilterStep/linear1d", model.Linear(1, 1, 0.05, 0.05), []float64{1.5}},
		{"BenchmarkFilterStep/linear2d", model.Linear(2, 0.1, 0.05, 0.05), []float64{1.5, -0.5}},
	}
	for _, tc := range cases {
		budget, ok := budgets[tc.name]
		if !ok {
			t.Fatalf("BENCH_BASELINE.json has no %s entry", tc.name)
		}
		f, err := tc.m.NewFilter(tc.z)
		if err != nil {
			t.Fatal(err)
		}
		z := mat.Vec(tc.z...)
		// Warm up so one-time lazy allocations do not count.
		for i := 0; i < 3; i++ {
			if err := f.Step(z); err != nil {
				t.Fatal(err)
			}
		}
		got := int64(testing.AllocsPerRun(200, func() {
			if err := f.Step(z); err != nil {
				t.Fatal(err)
			}
		}))
		if got > budget {
			t.Errorf("%s allocates %d/op, budget %d/op (BENCH_BASELINE.json)", tc.name, got, budget)
		}
	}
}

// sourceProcessAllocs measures the steady-state suppressed-path
// allocation cost of SourceNode.Process, optionally with a flight
// recorder attached.
func sourceProcessAllocs(t *testing.T, traced bool) float64 {
	t.Helper()
	node, err := core.NewSourceNode(core.Config{
		SourceID: "s1",
		Model:    model.Linear(1, 1, 0.05, 0.05),
		Delta:    1e9, // everything after bootstrap is suppressed
	})
	if err != nil {
		t.Fatal(err)
	}
	if traced {
		node.SetTrace(trace.New(trace.Options{}))
	}
	r := stream.Reading{Values: []float64{1}}
	seq := 0
	offer := func() {
		r.Seq = seq
		r.Time = float64(seq)
		r.Values[0] = float64(seq)
		seq++
		u, _, err := node.Process(r)
		if err != nil {
			t.Fatal(err)
		}
		if u != nil && seq > 1 {
			t.Fatalf("reading %d transmitted under δ=1e9", seq-1)
		}
	}
	// Bootstrap plus warm-up so lazy one-time allocations do not count.
	for i := 0; i < 5; i++ {
		offer()
	}
	return testing.AllocsPerRun(200, offer)
}

// TestSourceProcessTraceAllocBudget pins the tracing zero-cost
// contract at the source. The suppressed path's only allocation is the
// VecSlice copy of the returned estimate (pre-tracing baseline);
// attaching a recorder — which logs predict and decision events for
// every suppressed reading — must not add a single allocation on top.
func TestSourceProcessTraceAllocBudget(t *testing.T) {
	base := sourceProcessAllocs(t, false)
	if base > 1 {
		t.Errorf("untraced suppressed Process allocates %v/op, want <= 1 (estimate copy)", base)
	}
	if got := sourceProcessAllocs(t, true); got != base {
		t.Errorf("traced suppressed Process allocates %v/op, untraced %v/op — tracing must be free", got, base)
	}
}
