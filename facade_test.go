package streamkf_test

import (
	"math"
	"strings"
	"testing"

	"streamkf"
)

func TestFacadeEKFAndIMM(t *testing.T) {
	pend := streamkf.PendulumModel(0.02, 9.8, 0.05, 1e-6, 1e-4)
	ekf, err := pend.NewEKF([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ekf.Step(streamkf.MatrixFromRows([][]float64{{0.5}})); err != nil {
		t.Fatal(err)
	}
	// Same path via the facade's NewEKF.
	if _, err := streamkf.NewEKF(streamkf.EKFConfig{
		F:    pend.F,
		FJac: pend.FJac,
		H:    pend.H,
		HJac: pend.HJac,
		Q:    pend.Q,
		R:    pend.R,
		X0:   pend.Init([]float64{0.5}),
	}); err != nil {
		t.Fatal(err)
	}

	mk := func(phi [][]float64) *streamkf.Filter {
		f, err := streamkf.NewFilter(streamkf.FilterConfig{
			Phi: func(int) *streamkf.Matrix { return streamkf.MatrixFromRows(phi) },
			H:   streamkf.MatrixFromRows([][]float64{{1, 0}}),
			Q:   streamkf.MatrixFromRows([][]float64{{0.01, 0}, {0, 0.01}}),
			R:   streamkf.MatrixFromRows([][]float64{{0.25}}),
			X0:  streamkf.MatrixFromRows([][]float64{{0}, {0}}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	im, err := streamkf.NewIMM(streamkf.IMMConfig{Filters: []*streamkf.Filter{
		mk([][]float64{{1, 0}, {0, 0}}),
		mk([][]float64{{1, 1}, {0, 1}}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 40; k++ {
		if err := im.Step(streamkf.MatrixFromRows([][]float64{{3}})); err != nil {
			t.Fatal(err)
		}
	}
	if got := im.State().At(0, 0); math.Abs(got-3) > 0.5 {
		t.Fatalf("IMM estimate %v, want ~3", got)
	}
}

func TestFacadeNonlinearSession(t *testing.T) {
	sess, err := streamkf.NewNonlinearSession(streamkf.NonlinearConfig{
		SourceID: "pend",
		Model:    streamkf.PendulumModel(0.02, 9.8, 0.05, 1e-6, 1e-4),
		Delta:    0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	th, om := 1.0, 0.0
	for k := 0; k < 200; k++ {
		om = (1-0.05*0.02)*om - 9.8*math.Sin(th)*0.02
		th += om * 0.02
		if _, err := sess.Step(streamkf.Reading{Seq: k, Values: []float64{th}}); err != nil {
			t.Fatal(err)
		}
	}
	if !sess.InSync() {
		t.Fatal("facade nonlinear session out of sync")
	}
	if sess.Metrics().PercentUpdates() > 50 {
		t.Fatalf("%% updates = %v", sess.Metrics().PercentUpdates())
	}
}

func TestFacadeSampledAndSmoother(t *testing.T) {
	sampler, err := streamkf.NewAdaptiveSampler(2, 0.3, 8)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := streamkf.NewSampledSession(streamkf.Config{
		SourceID: "s",
		Model:    streamkf.LinearModel(1, 1, 0.05, 0.05),
		Delta:    2,
	}, sampler)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = float64(i)
	}
	m, err := sess.Run(streamkf.FromValues(vals, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Skipped == 0 {
		t.Fatal("sampled session never slept on a ramp")
	}

	lm := streamkf.LinearModel(1, 1, 1e-4, 1)
	res, err := streamkf.Smooth(streamkf.FilterConfig{
		Phi: lm.Phi, H: lm.H, Q: lm.Q, R: lm.R, X0: lm.Init(vals[:1]),
	}, streamkf.MeasurementsFromValues(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) != len(vals) {
		t.Fatalf("smoother states = %d", len(res.States))
	}
}

func TestFacadeCQLAndHistory(t *testing.T) {
	catalog := streamkf.NewCatalog()
	lin := streamkf.LinearModel(1, 1, 0.05, 0.05)
	catalog.Register(lin)
	server := streamkf.NewDSMSServer(catalog)
	st, err := streamkf.ParseCQL("SELECT VALUE FROM s MODEL linear WITHIN 2 AS q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "q" {
		t.Fatalf("parsed name %q", st.Name)
	}
	if _, err := streamkf.InstallCQL(server, "SELECT VALUE FROM s MODEL linear WITHIN 2 AS q"); err != nil {
		t.Fatal(err)
	}
	if err := server.EnableHistory("s"); err != nil {
		t.Fatal(err)
	}
	cfg, err := server.InstallFor("s")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := streamkf.NewAgent(cfg, streamkf.TransportFunc(server.HandleUpdate))
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 2 * float64(i)
	}
	if err := agent.Run(streamkf.NewSliceSource(streamkf.FromValues(vals, 1))); err != nil {
		t.Fatal(err)
	}
	past, err := server.AnswerAt("q", 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(past[0]-84) > 3 {
		t.Fatalf("history answer %v, want ~84", past[0])
	}
}

func TestFacadeTransportsAndScoring(t *testing.T) {
	cfg := streamkf.Config{SourceID: "s", Model: streamkf.LinearModel(1, 1, 0.05, 0.05), Delta: 1}
	sess, err := streamkf.NewSessionWithTransport(cfg, func(direct streamkf.Transport) (streamkf.Transport, error) {
		lossy, err := streamkf.NewLossyTransport(direct, 0.2, streamkf.LossDetect, 3)
		if err != nil {
			return nil, err
		}
		return streamkf.NewReliableTransport(lossy, 20)
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i % 7)
	}
	if _, err := sess.Run(streamkf.FromValues(vals, 1)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(streamkf.ErrDropped.Error(), "dropped") {
		t.Fatal("ErrDropped text unexpected")
	}

	sel, err := streamkf.NewSelectorScored([]streamkf.Model{
		streamkf.ConstantModel(1, 0.05, 0.05),
		streamkf.LinearModel(1, 1, 0.05, 0.05),
	}, 10, 1.3, streamkf.ScoreLogLikelihood)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Active().Name != "constant" {
		t.Fatalf("initial active = %s", sel.Active().Name)
	}
}

func TestFacadeSourceServerNodesAndArchive(t *testing.T) {
	cfg := streamkf.Config{SourceID: "s", Model: streamkf.LinearModel(1, 1, 0.05, 0.05), Delta: 1}
	src, err := streamkf.NewSourceNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := streamkf.NewServerNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u, _, err := src.Process(streamkf.Reading{Seq: 0, Values: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ApplyUpdate(*u); err != nil {
		t.Fatal(err)
	}

	arch, err := streamkf.OpenSynopsisArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := streamkf.LinearModel(1, 1, 0.05, 0.05)
	w, err := arch.NewWriter("s", m, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = float64(i)
	}
	for _, r := range streamkf.FromValues(vals, 1) {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := arch.ReconstructAll("s", func(string) (streamkf.Model, error) { return m, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(vals) {
		t.Fatalf("archive reconstructed %d readings, want %d", len(back), len(vals))
	}
}

func TestFacadeWindowing(t *testing.T) {
	ws, err := streamkf.NewWindowStats(3)
	if err != nil {
		t.Fatal(err)
	}
	ws.Observe(1)
	ws.Observe(2)
	ws.Observe(3)
	if ws.Mean() != 2 {
		t.Fatalf("window mean %v", ws.Mean())
	}
	mm, err := streamkf.NewWindowMinMax(2)
	if err != nil {
		t.Fatal(err)
	}
	mm.Observe(5)
	mm.Observe(1)
	if mn, _ := mm.Min(); mn != 1 {
		t.Fatalf("window min %v", mn)
	}
	ew, err := streamkf.NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := ew.Observe(4); got != 4 {
		t.Fatalf("EWMA %v", got)
	}

	catalog := streamkf.DefaultCatalog(1)
	server := streamkf.NewDSMSServer(catalog)
	name, err := streamkf.InstallCQL(server, "SELECT AVG FROM z OVER 4 MODEL constant WITHIN 1 AS w")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := server.InstallFor("z")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := streamkf.NewAgent(cfg, streamkf.TransportFunc(server.HandleUpdate))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Run(streamkf.NewSliceSource(streamkf.FromValues([]float64{7, 7, 7, 7, 7, 7}, 1))); err != nil {
		t.Fatal(err)
	}
	got, err := server.AnswerWindow(name, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-7) > 1 {
		t.Fatalf("windowed CQL answer %v, want ~7", got)
	}
}

func TestFacadeTCP(t *testing.T) {
	catalog := streamkf.DefaultCatalog(1)
	server := streamkf.NewDSMSServer(catalog)
	if err := server.Register(streamkf.Query{ID: "q", SourceID: "s", Delta: 2, Model: "linear"}); err != nil {
		t.Fatal(err)
	}
	ts, err := streamkf.NewTCPServer(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ts.Serve() }()
	defer func() {
		ts.Close()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()
	agent, err := streamkf.DialSource(ts.Addr(), "s", catalog)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = float64(3 * i)
	}
	if err := agent.Run(streamkf.NewSliceSource(streamkf.FromValues(vals, 1))); err != nil {
		t.Fatal(err)
	}
	qc, err := streamkf.DialQuery(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	ans, err := qc.Ask("q", 49)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans[0]-147) > 4 {
		t.Fatalf("TCP facade answer %v, want ~147", ans[0])
	}
}
